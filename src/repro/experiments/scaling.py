"""Large-topology balancing scaling experiment.

The paper evaluates max-min balancing on ~25-node networks; this experiment
pushes the balancing core to 200–1000-node Waxman, wraparound-grid and
Erdős–Rényi generation graphs — the regime the incremental engine
(:mod:`repro.core.maxmin.incremental`) exists for.

The workload models a provisioning imbalance: every generation edge starts
with a few Bell pairs and a small fraction of "hot" edges hold deep buffers
(freshly provisioned high-rate links).  Balancing must drain the hot edges
into the network, which exercises the long convergence tail where the naive
engine rescans every node every round while only a handful still have
preferable swaps.

Each row reports the converged fixed point (rounds, swaps, residual
imbalance) and the wall-clock seconds per engine; running both engines on
the same cell doubles as an end-to-end equivalence check, since the fixed
points must be identical.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fairness import balanced_fixed_point, count_imbalance
from repro.analysis.reporting import format_table
from repro.core.maxmin.incremental import BALANCER_ENGINES
from repro.core.maxmin.ledger import PairCountLedger
from repro.experiments.config import full_mode_enabled
from repro.network.topologies import topology_from_name
from repro.network.topology import Topology
from repro.sim.rng import RandomStreams

#: The large-topology families this experiment sweeps.
SCALING_TOPOLOGIES: Tuple[str, ...] = ("waxman", "grid", "erdos-renyi")

#: Quick sweep (CI / benchmarks) and full sweep (REPRO_FULL=1) of |N|.
QUICK_SCALING_SIZES: Tuple[int, ...] = (200,)
FULL_SCALING_SIZES: Tuple[int, ...] = (200, 500, 1000)


@dataclass
class ScalingRow:
    """One (topology, |N|, engine) cell of the scaling sweep.

    ``n_nodes`` is the requested cell size (the sweep key); ``actual_nodes``
    is the built graph's size, which differs only for grids (snapped to the
    nearest perfect square).
    """

    topology: str
    n_nodes: int
    actual_nodes: int
    engine: str
    ledger_pairs_before: int
    imbalance_before: float
    imbalance_after: float
    rounds: int
    swaps: int
    seconds: float


@dataclass
class ScalingResult:
    """All scaling rows, with per-cell speedup accessors."""

    sizes: Tuple[int, ...]
    topologies: Tuple[str, ...]
    engines: Tuple[str, ...]
    rows: List[ScalingRow] = field(default_factory=list)

    def row_for(self, topology: str, n_nodes: int, engine: str) -> Optional[ScalingRow]:
        for row in self.rows:
            if (row.topology, row.n_nodes, row.engine) == (topology, n_nodes, engine):
                return row
        return None

    def speedup(self, topology: str, n_nodes: int) -> Optional[float]:
        """``naive seconds / incremental seconds`` for one cell (None if absent)."""
        naive = self.row_for(topology, n_nodes, "naive")
        incremental = self.row_for(topology, n_nodes, "incremental")
        if naive is None or incremental is None or incremental.seconds == 0:
            return None
        return naive.seconds / incremental.seconds

    def format_report(self) -> str:
        headers = (
            "topology",
            "|N|",
            "engine",
            "pairs",
            "imbalance",
            "rounds",
            "swaps",
            "seconds",
        )
        table_rows = [
            (
                row.topology,
                row.actual_nodes,
                row.engine,
                row.ledger_pairs_before,
                f"{row.imbalance_before:g}->{row.imbalance_after:g}",
                row.rounds,
                row.swaps,
                f"{row.seconds:.3f}",
            )
            for row in self.rows
        ]
        lines = [format_table(headers, table_rows, title="Scaling: balancing on large topologies")]
        for topology in self.topologies:
            for size in self.sizes:
                ratio = self.speedup(topology, size)
                if ratio is not None:
                    lines.append(f"  {topology} |N|={size}: incremental speedup {ratio:.1f}x")
        return "\n".join(lines)


def scaling_topology(
    name: str, n_nodes: int, streams: RandomStreams
) -> Topology:
    """Build one large generation graph, keeping the mean degree sane.

    The registry defaults are tuned for paper-scale (~25 node) networks and
    become very dense at |N| >= 200 (Waxman's default alpha/beta give mean
    degree ~90 at 500 nodes); this picks sparser parameters so balancing
    cost reflects topology size rather than accidental density.  Grid sizes
    are snapped to the nearest perfect square.
    """
    rng = streams.get("topology")
    if name == "grid":
        side = max(2, int(round(math.sqrt(n_nodes))))
        return topology_from_name(name, side * side, rng=rng)
    if name == "waxman":
        # With beta=0.3 the mean edge probability is ~0.29*alpha on the unit
        # square; pick alpha for a mean degree of ~10 regardless of |N|
        # (well above the ~ln|N| connectivity threshold up to 1000 nodes).
        alpha = min(0.6, 10.0 / (0.29 * n_nodes))
        return topology_from_name(name, n_nodes, rng=rng, alpha=alpha, beta=0.3)
    if name == "erdos-renyi":
        probability = min(0.3, max(10.0 / n_nodes, 1.5 * math.log(n_nodes) / n_nodes))
        return topology_from_name(name, n_nodes, rng=rng, edge_probability=probability)
    return topology_from_name(name, n_nodes, rng=rng)


def build_scaling_ledger(
    topology: str,
    n_nodes: int,
    seed: int = 1,
    base_pairs: int = 4,
    hot_fraction: float = 0.02,
    hot_depth: int = 300,
) -> Tuple[Topology, PairCountLedger]:
    """The provisioning-imbalance workload behind one scaling cell.

    Every generation edge receives 1..``base_pairs`` pairs; a
    ``hot_fraction`` of edges additionally receive ``hot_depth`` pairs.
    Deterministic in ``seed`` (named RNG streams, like every trial).
    """
    streams = RandomStreams(seed)
    graph = scaling_topology(topology, n_nodes, streams)
    rng = streams.get("scaling-counts")
    ledger = PairCountLedger(graph.nodes)
    edges = graph.edges()
    for edge in edges:
        ledger.add(edge[0], edge[1], int(rng.integers(1, base_pairs + 1)))
    n_hot = max(1, int(len(edges) * hot_fraction))
    for index in rng.choice(len(edges), size=n_hot, replace=False):
        edge = edges[int(index)]
        ledger.add(edge[0], edge[1], hot_depth)
    return graph, ledger


def run_scaling(
    topologies: Sequence[str] = SCALING_TOPOLOGIES,
    sizes: Optional[Sequence[int]] = None,
    engines: Sequence[str] = ("naive", "incremental"),
    seed: int = 1,
    distillation: float = 1.0,
    max_rounds: int = 200_000,
    base_pairs: int = 4,
    hot_fraction: float = 0.02,
    hot_depth: int = 300,
) -> ScalingResult:
    """Run the large-topology balancing sweep.

    Every engine in ``engines`` balances an identical copy of each cell's
    ledger; when both engines run, the fixed points are asserted identical
    (the incremental engine's contract) before the result is returned.
    """
    unknown = [engine for engine in engines if engine not in BALANCER_ENGINES]
    if unknown:
        raise ValueError(f"unknown balancer engines {unknown}; choose from {BALANCER_ENGINES}")
    if sizes is None:
        sizes = FULL_SCALING_SIZES if full_mode_enabled() else QUICK_SCALING_SIZES
    result = ScalingResult(
        sizes=tuple(int(size) for size in sizes),
        topologies=tuple(topologies),
        engines=tuple(engines),
    )
    for topology in topologies:
        for size in result.sizes:
            graph, seeded = build_scaling_ledger(
                topology,
                size,
                seed=seed,
                base_pairs=base_pairs,
                hot_fraction=hot_fraction,
                hot_depth=hot_depth,
            )
            imbalance_before = count_imbalance(seeded)
            pairs_before = seeded.total_pairs()
            fixed_points: Dict[str, Dict] = {}
            for engine in engines:
                start = time.perf_counter()
                converged, balancer, rounds = balanced_fixed_point(
                    seeded,
                    overheads=distillation,
                    engine=engine,
                    max_rounds=max_rounds,
                    seed=seed,
                )
                elapsed = time.perf_counter() - start
                fixed_points[engine] = converged.nonzero_pairs()
                result.rows.append(
                    ScalingRow(
                        topology=topology,
                        n_nodes=size,
                        actual_nodes=graph.n_nodes,
                        engine=engine,
                        ledger_pairs_before=pairs_before,
                        imbalance_before=imbalance_before,
                        imbalance_after=count_imbalance(converged),
                        rounds=rounds,
                        swaps=balancer.swaps_performed,
                        seconds=elapsed,
                    )
                )
            if len(fixed_points) > 1:
                reference = fixed_points[engines[0]]
                for engine, pairs in fixed_points.items():
                    if pairs != reference:
                        raise RuntimeError(
                            f"balancer engines disagree on ({topology}, |N|={size}): "
                            f"{engines[0]} vs {engine}"
                        )
    return result
