"""Large-topology balancing scaling experiment.

The paper evaluates max-min balancing on ~25-node networks; this experiment
pushes the balancing core to 200–1000-node Waxman, wraparound-grid and
Erdős–Rényi generation graphs — the regime the incremental engine
(:mod:`repro.core.maxmin.incremental`) exists for.

The workload models a provisioning imbalance: every generation edge starts
with a few Bell pairs and a small fraction of "hot" edges hold deep buffers
(freshly provisioned high-rate links).  Balancing must drain the hot edges
into the network, which exercises the long convergence tail where the naive
engine rescans every node every round while only a handful still have
preferable swaps.

Each row reports the converged fixed point (rounds, swaps, residual
imbalance) and the wall-clock seconds per engine; running both engines on
the same cell doubles as an end-to-end equivalence check, since the fixed
points must be identical.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fairness import balanced_fixed_point, count_imbalance
from repro.analysis.reporting import format_table
from repro.core.maxmin.incremental import BALANCER_ENGINES
from repro.core.maxmin.ledger import PairCountLedger
from repro.experiments.api import Experiment, ExperimentResult, ParamSpec, RowTable, columns_of
from repro.experiments.config import full_mode_enabled
from repro.experiments.registry import register
from repro.runtime.seeding import seed_grid
from repro.network.topologies import topology_from_name
from repro.network.topology import Topology
from repro.sim.rng import RandomStreams

#: The large-topology families this experiment sweeps.
SCALING_TOPOLOGIES: Tuple[str, ...] = ("waxman", "grid", "erdos-renyi")

#: Quick sweep (CI / benchmarks) and full sweep (REPRO_FULL=1) of |N|.
QUICK_SCALING_SIZES: Tuple[int, ...] = (200,)
FULL_SCALING_SIZES: Tuple[int, ...] = (200, 500, 1000)


@dataclass
class ScalingRow:
    """One (topology, |N|, engine) cell of the scaling sweep.

    ``n_nodes`` is the requested cell size (the sweep key); ``actual_nodes``
    is the built graph's size, which differs only for grids (snapped to the
    nearest perfect square).
    """

    topology: str
    n_nodes: int
    actual_nodes: int
    engine: str
    ledger_pairs_before: int
    imbalance_before: float
    imbalance_after: float
    rounds: int
    swaps: int
    seconds: float


@dataclass
class ScalingResult(ExperimentResult):
    """All scaling rows, with per-cell speedup accessors."""

    experiment = "scaling"
    COLUMNS = columns_of(ScalingRow)

    sizes: Tuple[int, ...]
    topologies: Tuple[str, ...]
    engines: Tuple[str, ...]
    rows: List[ScalingRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Structured records stay attribute-accessible (result.rows);
        # calling the table yields the uniform contract's flat tuples.
        self.rows = RowTable(self.rows)

    def row_for(self, topology: str, n_nodes: int, engine: str) -> Optional[ScalingRow]:
        for row in self.rows:
            if (row.topology, row.n_nodes, row.engine) == (topology, n_nodes, engine):
                return row
        return None

    def speedup(self, topology: str, n_nodes: int) -> Optional[float]:
        """``naive seconds / incremental seconds`` for one cell (None if absent)."""
        naive = self.row_for(topology, n_nodes, "naive")
        incremental = self.row_for(topology, n_nodes, "incremental")
        if naive is None or incremental is None or incremental.seconds == 0:
            return None
        return naive.seconds / incremental.seconds

    def format_report(self) -> str:
        headers = (
            "topology",
            "|N|",
            "engine",
            "pairs",
            "imbalance",
            "rounds",
            "swaps",
            "seconds",
        )
        table_rows = [
            (
                row.topology,
                row.actual_nodes,
                row.engine,
                row.ledger_pairs_before,
                f"{row.imbalance_before:g}->{row.imbalance_after:g}",
                row.rounds,
                row.swaps,
                f"{row.seconds:.3f}",
            )
            for row in self.rows
        ]
        lines = [format_table(headers, table_rows, title="Scaling: balancing on large topologies")]
        for topology in self.topologies:
            for size in self.sizes:
                ratio = self.speedup(topology, size)
                if ratio is not None:
                    lines.append(f"  {topology} |N|={size}: incremental speedup {ratio:.1f}x")
        return "\n".join(lines)


def scaling_topology(
    name: str, n_nodes: int, streams: RandomStreams
) -> Topology:
    """Build one large generation graph, keeping the mean degree sane.

    The registry defaults are tuned for paper-scale (~25 node) networks and
    become very dense at |N| >= 200 (Waxman's default alpha/beta give mean
    degree ~90 at 500 nodes); this picks sparser parameters so balancing
    cost reflects topology size rather than accidental density.  Grid sizes
    are snapped to the nearest perfect square.
    """
    rng = streams.get("topology")
    if name == "grid":
        side = max(2, int(round(math.sqrt(n_nodes))))
        return topology_from_name(name, side * side, rng=rng)
    if name == "waxman":
        # With beta=0.3 the mean edge probability is ~0.29*alpha on the unit
        # square; pick alpha for a mean degree of ~10 regardless of |N|
        # (well above the ~ln|N| connectivity threshold up to 1000 nodes).
        alpha = min(0.6, 10.0 / (0.29 * n_nodes))
        return topology_from_name(name, n_nodes, rng=rng, alpha=alpha, beta=0.3)
    if name == "erdos-renyi":
        probability = min(0.3, max(10.0 / n_nodes, 1.5 * math.log(n_nodes) / n_nodes))
        return topology_from_name(name, n_nodes, rng=rng, edge_probability=probability)
    return topology_from_name(name, n_nodes, rng=rng)


def build_scaling_ledger(
    topology: str,
    n_nodes: int,
    seed: int = 1,
    base_pairs: int = 4,
    hot_fraction: float = 0.02,
    hot_depth: int = 300,
) -> Tuple[Topology, PairCountLedger]:
    """The provisioning-imbalance workload behind one scaling cell.

    Every generation edge receives 1..``base_pairs`` pairs; a
    ``hot_fraction`` of edges additionally receive ``hot_depth`` pairs.
    Deterministic in ``seed`` (named RNG streams, like every trial).
    """
    streams = RandomStreams(seed)
    graph = scaling_topology(topology, n_nodes, streams)
    rng = streams.get("scaling-counts")
    ledger = PairCountLedger(graph.nodes)
    edges = graph.edges()
    for edge in edges:
        ledger.add(edge[0], edge[1], int(rng.integers(1, base_pairs + 1)))
    n_hot = max(1, int(len(edges) * hot_fraction))
    for index in rng.choice(len(edges), size=n_hot, replace=False):
        edge = edges[int(index)]
        ledger.add(edge[0], edge[1], hot_depth)
    return graph, ledger


def _run_scaling_cell(
    topology: str,
    size: int,
    engines: Sequence[str],
    seed: int,
    distillation: float,
    max_rounds: int,
    base_pairs: int,
    hot_fraction: float,
    hot_depth: int,
) -> List[ScalingRow]:
    """Balance one (topology, |N|) cell with every engine and cross-check.

    Every engine balances an identical copy of the cell's seeded ledger;
    when more than one engine runs, the fixed points are asserted identical
    (the incremental engine's contract) before the rows are returned.
    """
    graph, seeded = build_scaling_ledger(
        topology,
        size,
        seed=seed,
        base_pairs=base_pairs,
        hot_fraction=hot_fraction,
        hot_depth=hot_depth,
    )
    imbalance_before = count_imbalance(seeded)
    pairs_before = seeded.total_pairs()
    fixed_points: Dict[str, Dict] = {}
    rows: List[ScalingRow] = []
    for engine in engines:
        start = time.perf_counter()
        converged, balancer, rounds = balanced_fixed_point(
            seeded,
            overheads=distillation,
            engine=engine,
            max_rounds=max_rounds,
            seed=seed,
        )
        elapsed = time.perf_counter() - start
        fixed_points[engine] = converged.nonzero_pairs()
        rows.append(
            ScalingRow(
                topology=topology,
                n_nodes=size,
                actual_nodes=graph.n_nodes,
                engine=engine,
                ledger_pairs_before=pairs_before,
                imbalance_before=imbalance_before,
                imbalance_after=count_imbalance(converged),
                rounds=rounds,
                swaps=balancer.swaps_performed,
                seconds=elapsed,
            )
        )
    if len(fixed_points) > 1:
        reference = fixed_points[engines[0]]
        for engine, pairs in fixed_points.items():
            if pairs != reference:
                raise RuntimeError(
                    f"balancer engines disagree on ({topology}, |N|={size}): "
                    f"{engines[0]} vs {engine}"
                )
    return rows


@register
class ScalingExperiment(Experiment):
    """The large-topology balancing sweep as a registered experiment."""

    name = "scaling"
    summary = "Max-min balancing on 200-1000-node topologies: naive vs incremental engine speedup."
    supports_runtime = False
    params = (
        ParamSpec(
            "sizes",
            int,
            None,
            "network sizes |N| to sweep (default: quick/full preset)",
            nargs="*",
        ),
        ParamSpec(
            "balancer",
            str,
            None,
            "run only this balancing engine (default: both, which also cross-checks fixed points)",
            choices=("naive", "incremental"),
        ),
        ParamSpec(
            "master_seed",
            int,
            None,
            "derive the workload seed from this master seed (SHA-256, never used verbatim)",
            flag="--master-seed",
            metavar="SEED",
        ),
        ParamSpec("topologies", tuple, SCALING_TOPOLOGIES, "topology families to sweep", cli=False),
        ParamSpec("engines", tuple, None, "explicit engine list (overrides balancer)", cli=False),
        ParamSpec("seed", int, 1, "workload seed", cli=False),
        ParamSpec("distillation", float, 1.0, "distillation overhead D", cli=False),
        ParamSpec("max_rounds", int, 200_000, "safety cap on balancing rounds", cli=False),
        ParamSpec("base_pairs", int, 4, "max pairs seeded on every generation edge", cli=False),
        ParamSpec("hot_fraction", float, 0.02, "fraction of edges given deep buffers", cli=False),
        ParamSpec("hot_depth", int, 300, "pair depth of the hot edges", cli=False),
    )

    def normalize(self, params):
        engines = params["engines"]
        if engines is None:
            balancer = params["balancer"]
            engines = (balancer,) if balancer else ("naive", "incremental")
        params["engines"] = tuple(engines)
        unknown = [engine for engine in params["engines"] if engine not in BALANCER_ENGINES]
        if unknown:
            raise ValueError(f"unknown balancer engines {unknown}; choose from {BALANCER_ENGINES}")
        if params["master_seed"] is not None:
            params["seed"] = seed_grid(params["master_seed"], 1)[0]
        sizes = params["sizes"]
        if not sizes:  # None or a bare --sizes: use the preset
            sizes = FULL_SCALING_SIZES if full_mode_enabled() else QUICK_SCALING_SIZES
        params["sizes"] = tuple(int(size) for size in sizes)
        return params

    def build_grid(self, params) -> List[Dict]:
        return [
            dict(
                topology=topology,
                size=size,
                engines=params["engines"],
                seed=params["seed"],
                distillation=params["distillation"],
                max_rounds=params["max_rounds"],
                base_pairs=params["base_pairs"],
                hot_fraction=params["hot_fraction"],
                hot_depth=params["hot_depth"],
            )
            for topology in params["topologies"]
            for size in params["sizes"]
        ]

    def execute(self, grid, runtime) -> List[List[ScalingRow]]:
        # Wall-clock per engine is the measurement, so cells run in-process
        # and sequentially (a process pool would skew the timings).
        return [_run_scaling_cell(**cell) for cell in grid]

    def reduce(self, outcomes: List[List[ScalingRow]], params) -> ScalingResult:
        result = ScalingResult(
            sizes=params["sizes"],
            topologies=tuple(params["topologies"]),
            engines=params["engines"],
        )
        for cell_rows in outcomes:
            result.rows.extend(cell_rows)
        return result


def run_scaling(
    topologies: Sequence[str] = SCALING_TOPOLOGIES,
    sizes: Optional[Sequence[int]] = None,
    engines: Sequence[str] = ("naive", "incremental"),
    seed: int = 1,
    distillation: float = 1.0,
    max_rounds: int = 200_000,
    base_pairs: int = 4,
    hot_fraction: float = 0.02,
    hot_depth: int = 300,
) -> ScalingResult:
    """Run the large-topology balancing sweep.

    Backward-compatible wrapper over :class:`ScalingExperiment`; every
    engine balances an identical copy of each cell's ledger, and when both
    engines run their fixed points are asserted identical.
    """
    return ScalingExperiment().run(
        topologies=topologies,
        sizes=sizes,
        engines=tuple(engines),
        seed=seed,
        distillation=distillation,
        max_rounds=max_rounds,
        base_pairs=base_pairs,
        hot_fraction=hot_fraction,
        hot_depth=hot_depth,
    )
