"""The machine-readable experiment-result schema, and a tiny validator.

Every :meth:`repro.experiments.api.ExperimentResult.to_json` payload
conforms to :data:`RESULT_SCHEMA` -- a deliberately small JSON-Schema
subset (``type`` / ``required`` / ``properties`` / ``items`` / ``enum``)
validated by :func:`validate_payload` without any third-party dependency.
The canonical copy external consumers should pin lives at
``docs/schemas/experiment-result.schema.json``; a test asserts the two
never drift.

Usable as a filter for CI gates::

    python -m repro figure4 --format json --output - \\
        | python -m repro.experiments.schema -
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

from repro.experiments.api import RESULT_SCHEMA_VERSION

#: The JSON schema every result payload must satisfy.
RESULT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro experiment result",
    "description": (
        "Machine-readable output of one repro experiment: the flat result "
        "table (columns + rows) and the named figure series, as emitted by "
        "`repro <experiment> --format json`."
    ),
    "type": "object",
    "required": ["schema_version", "experiment", "columns", "rows", "series"],
    "properties": {
        "schema_version": {"type": "integer", "enum": [RESULT_SCHEMA_VERSION]},
        "experiment": {"type": "string"},
        "columns": {"type": "array", "items": {"type": "string"}},
        "rows": {"type": "array", "items": {"type": "array"}},
        "series": {"type": "object"},
    },
}

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


class SchemaError(ValueError):
    """A payload violated the result schema (message says where)."""


def _check(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](value) for name in allowed):
            errors.append(f"{path}: expected type {expected}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    for key in schema.get("required", ()):
        if key not in value:
            errors.append(f"{path}: missing required key {key!r}")
    for key, subschema in schema.get("properties", {}).items():
        if isinstance(value, dict) and key in value:
            _check(value[key], subschema, f"{path}.{key}", errors)
    if "items" in schema and isinstance(value, list):
        for index, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{index}]", errors)


def validate_payload(payload: Any, schema: Dict[str, Any] = RESULT_SCHEMA) -> None:
    """Raise :class:`SchemaError` listing every violation (silent on success)."""
    errors: List[str] = []
    _check(payload, schema, "$", errors)
    if errors:
        raise SchemaError("; ".join(errors))


def main(argv=None) -> int:
    """Validate a JSON result document from a file (or ``-`` for stdin)."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print("usage: python -m repro.experiments.schema <result.json | ->", file=sys.stderr)
        return 2
    raw = sys.stdin.read() if argv[0] == "-" else open(argv[0], encoding="utf-8").read()
    try:
        payload = json.loads(raw)
        validate_payload(payload)
    except (json.JSONDecodeError, SchemaError) as error:
        print(f"result schema violation: {error}", file=sys.stderr)
        return 1
    print(f"ok: valid result payload for experiment {payload['experiment']!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
