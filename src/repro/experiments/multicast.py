"""Multicast experiment: shared fusion vs independent sessions over group sizes.

The group-keyed core serves a k-party GHZ request by spending Bell-pair
*sessions* chosen by a strategy (:mod:`repro.protocols.fusion`): ``shared``
builds a star of ``k - 1`` hub pairs merged by ``k - 2`` fusions, while
``independent-sessions`` runs all ``k(k-1)/2`` member pairs.  This
experiment asks the capacity question directly: for group sizes 2-5, how do
the two strategies compare on throughput (satisfied requests per round),
consumption fairness (Jain's index over per-group-key served counts), swap
and fusion cost, and tail latency?

Each cell runs the path-oblivious protocol against a ``multicast`` workload
spec (Poisson arrivals, half the arrivals targeting GHZ groups of the
cell's size, served with the cell's strategy).  Group size 2 is the built-in
sanity row: both strategies degenerate to single Bell-pair sessions there,
so their numbers must coincide.

``--smoke`` shrinks the sweep to one small group-size-3 cell per strategy
(the CI gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.fairness import jains_index
from repro.analysis.reporting import format_table
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RowTable,
    RuntimeOptions,
    columns_of,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome
from repro.experiments.registry import register
from repro.protocols.fusion import GROUP_STRATEGIES, validate_strategy
from repro.workloads.registry import validate_workload_spec
from repro.workloads.slo import TOTAL_KEY

#: Group sizes the default sweep compares (2 is the pair sanity row).
DEFAULT_GROUP_SIZES: Tuple[int, ...] = (2, 3, 4, 5)

#: Fraction of arrivals that target a GHZ group in each cell.
DEFAULT_GROUP_FRACTION = 0.5


@dataclass
class MulticastRow:
    """One (group size, strategy) cell of the multicast comparison."""

    group_size: int
    strategy: str
    workload: str
    arrivals: int
    satisfied: int
    rounds: int
    throughput: float
    swaps: int
    fusions: int
    pairs_consumed: int
    jain_fairness: float
    p95_latency: float
    effective_groups: int


@dataclass
class MulticastResult(ExperimentResult):
    """Shared-vs-independent strategy comparison over group sizes."""

    experiment = "multicast"
    COLUMNS = columns_of(MulticastRow)

    group_sizes: Tuple[int, ...]
    strategies: Tuple[str, ...]
    seed: int
    rows: List[MulticastRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rows = RowTable(self.rows)

    def rows_for_strategy(self, strategy: str) -> List[MulticastRow]:
        return [row for row in self.rows if row.strategy == strategy]

    def format_report(self) -> str:
        headers = (
            "size",
            "strategy",
            "arrived",
            "served",
            "rounds",
            "throughput",
            "swaps",
            "fusions",
            "pairs",
            "fairness",
            "p95",
        )
        table_rows = [
            (
                row.group_size,
                row.strategy,
                row.arrivals,
                row.satisfied,
                row.rounds,
                f"{row.throughput:.4f}",
                row.swaps,
                row.fusions,
                row.pairs_consumed,
                f"{row.jain_fairness:.3f}",
                f"{row.p95_latency:.1f}",
            )
            for row in self.rows
        ]
        lines = [
            format_table(
                headers,
                table_rows,
                title="Multicast: shared fusion vs independent sessions",
            )
        ]
        for size in self.group_sizes:
            cells = {
                row.strategy: row for row in self.rows if row.group_size == size
            }
            if len(cells) < 2:
                continue
            shared = cells.get("shared")
            independent = cells.get("independent-sessions")
            if shared is None or independent is None:
                continue
            if independent.throughput > 0:
                gain = shared.throughput / independent.throughput
                lines.append(
                    f"  size {size}: shared serves {gain:.2f}x the throughput of "
                    f"independent sessions ({shared.fusions} fusions vs 0)"
                )
        return "\n".join(lines)


@register
class MulticastExperiment(Experiment):
    """The GHZ group-serving strategy comparison as a registered experiment."""

    name = "multicast"
    summary = (
        "Shared (star-of-pairs + fusion) vs independent-sessions GHZ serving "
        "over group sizes 2-5: throughput, fairness, swap and fusion cost."
    )
    supports_runtime = True
    params = (
        ParamSpec("topology", str, "cycle", "topology family of every cell"),
        ParamSpec("n_nodes", int, 16, "number of nodes |N|", flag="--nodes"),
        ParamSpec(
            "n_requests",
            int,
            40,
            "arrival budget per cell (the trace is truncated to this many requests)",
            flag="--requests",
        ),
        ParamSpec(
            "group_fraction",
            float,
            DEFAULT_GROUP_FRACTION,
            "fraction of arrivals that target a GHZ group instead of a pair",
        ),
        ParamSpec("rate", float, 2.0, "Poisson arrival rate (requests per round)"),
        ParamSpec(
            "smoke",
            bool,
            False,
            "shrink the sweep to one small group-size-3 cell per strategy (CI gate)",
            is_flag=True,
        ),
        ParamSpec("group_sizes", tuple, DEFAULT_GROUP_SIZES, "group sizes to sweep", cli=False),
        ParamSpec("strategies", tuple, GROUP_STRATEGIES, "group strategies to compare", cli=False),
        ParamSpec("n_consumer_pairs", int, 10, "consumer pairs/groups drawn per trial", cli=False),
        ParamSpec("seed", int, 1, "workload seed", cli=False),
        ParamSpec("max_rounds", int, 20_000, "safety cap on simulated rounds", cli=False),
    )

    def normalize(self, params):
        sizes = tuple(int(size) for size in params["group_sizes"])
        if any(size < 2 for size in sizes):
            raise ValueError(f"group sizes must all be >= 2, got {sizes}")
        params["group_sizes"] = sizes
        params["strategies"] = tuple(
            validate_strategy(strategy) for strategy in params["strategies"]
        )
        if not 0.0 <= float(params["group_fraction"]) <= 1.0:
            raise ValueError(
                f"group_fraction must be within [0, 1], got {params['group_fraction']}"
            )
        if params["smoke"]:
            params["group_sizes"] = (3,)
            params["n_nodes"] = min(params["n_nodes"], 9)
            params["n_requests"] = min(params["n_requests"], 12)
            params["n_consumer_pairs"] = min(params["n_consumer_pairs"], 6)
            params["max_rounds"] = min(params["max_rounds"], 3000)
        return params

    def _spec_for(self, params, size: int, strategy: str) -> str:
        spec = (
            f"multicast:rate={float(params['rate']):g}"
            f",group_fraction={float(params['group_fraction']):g}"
            f",group_size={size},group_strategy={strategy}"
        )
        return validate_workload_spec(spec)

    def build_grid(self, params) -> List[ExperimentConfig]:
        return [
            ExperimentConfig(
                topology=params["topology"],
                n_nodes=params["n_nodes"],
                n_consumer_pairs=params["n_consumer_pairs"],
                n_requests=params["n_requests"],
                seed=params["seed"],
                protocol="path-oblivious",
                workload=self._spec_for(params, size, strategy),
                max_rounds=params["max_rounds"],
            )
            for size in params["group_sizes"]
            for strategy in params["strategies"]
        ]

    def reduce(self, outcomes: List[TrialOutcome], params) -> MulticastResult:
        result = MulticastResult(
            group_sizes=params["group_sizes"],
            strategies=params["strategies"],
            seed=params["seed"],
        )
        cells = [
            (size, strategy)
            for size in params["group_sizes"]
            for strategy in params["strategies"]
        ]
        for (size, strategy), outcome in zip(cells, outcomes):
            total = outcome.slo.get(TOTAL_KEY, {})
            served_counts = list(outcome.consumption_by_pair.values())
            result.rows.append(
                MulticastRow(
                    group_size=size,
                    strategy=strategy,
                    workload=outcome.config.workload,
                    arrivals=outcome.requests_total,
                    satisfied=outcome.requests_satisfied,
                    rounds=outcome.rounds,
                    throughput=(
                        outcome.requests_satisfied / outcome.rounds
                        if outcome.rounds
                        else 0.0
                    ),
                    swaps=outcome.swaps_performed,
                    fusions=outcome.fusions_performed,
                    pairs_consumed=outcome.pairs_consumed,
                    jain_fairness=jains_index(served_counts) if served_counts else 0.0,
                    p95_latency=float(total.get("p95_latency", float("nan"))),
                    effective_groups=int(outcome.effective_consumer_groups or 0),
                )
            )
        return result


def run_multicast(
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    strategies: Sequence[str] = GROUP_STRATEGIES,
    topology: str = "cycle",
    n_nodes: int = 16,
    n_requests: int = 40,
    n_consumer_pairs: int = 10,
    group_fraction: float = DEFAULT_GROUP_FRACTION,
    rate: float = 2.0,
    seed: int = 1,
    smoke: bool = False,
    max_rounds: int = 20_000,
    n_workers: Optional[int] = 1,
    cache=None,
) -> MulticastResult:
    """Run the GHZ strategy comparison (wrapper over
    :class:`MulticastExperiment`)."""
    return MulticastExperiment().run(
        runtime=RuntimeOptions(workers=n_workers, cache=cache),
        group_sizes=tuple(group_sizes),
        strategies=tuple(strategies),
        topology=topology,
        n_nodes=n_nodes,
        n_requests=n_requests,
        n_consumer_pairs=n_consumer_pairs,
        group_fraction=group_fraction,
        rate=rate,
        seed=seed,
        smoke=smoke,
        max_rounds=max_rounds,
    )
