"""The experiment registry.

Topologies and scenarios already resolve by name; this module gives
experiments the same treatment.  Each experiment module decorates its
:class:`~repro.experiments.api.Experiment` subclass with :func:`register`,
and everything downstream -- the CLI's auto-generated subparsers,
``repro --list``, the docs/CI coverage gates, programmatic callers using
:func:`get_experiment` -- iterates the registry instead of hand-maintained
tables.  Adding a workload is registering one class.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.experiments.api import Experiment, ParamSpec

_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_class: Type[Experiment]) -> Type[Experiment]:
    """Class decorator: validate and register an experiment (by its ``name``).

    The class is instantiated once, eagerly, so malformed parameter tables
    fail at import time rather than mid-run.  Re-registering the same class
    (module reloads) is a no-op; a *different* class claiming a taken name
    is an error.
    """
    instance = experiment_class()
    name = instance.name
    if not name:
        raise ValueError(f"{experiment_class.__qualname__} must set a non-empty name")
    if not instance.summary:
        raise ValueError(f"experiment {name!r} must set a one-line summary")
    seen_params: set = set()
    seen_flags: set = set()
    for spec in instance.params:
        if not isinstance(spec, ParamSpec):
            raise TypeError(f"experiment {name!r}: params must be ParamSpec, got {spec!r}")
        if spec.name in seen_params:
            raise ValueError(f"experiment {name!r}: duplicate parameter {spec.name!r}")
        seen_params.add(spec.name)
        if spec.cli:
            if spec.cli_flag in seen_flags:
                raise ValueError(f"experiment {name!r}: duplicate CLI flag {spec.cli_flag!r}")
            seen_flags.add(spec.cli_flag)
    existing = _REGISTRY.get(name)
    if existing is not None and type(existing).__qualname__ != experiment_class.__qualname__:
        raise ValueError(
            f"experiment name {name!r} already registered by {type(existing).__qualname__}"
        )
    _REGISTRY[name] = instance
    return experiment_class


def get_experiment(name: str) -> Experiment:
    """The registered experiment called ``name`` (KeyError with the menu)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {', '.join(experiment_names())}"
        ) from None


def experiment_names() -> Tuple[str, ...]:
    """Every registered experiment name, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_experiments() -> List[Experiment]:
    """Every registered experiment instance, sorted by name."""
    return [_REGISTRY[name] for name in experiment_names()]
