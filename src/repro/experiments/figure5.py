"""Figure 5: swap overhead as the network size ``|N|`` varies.

Paper setting: ``D = 1``, the same three topology families as Figure 4, and
the swap overhead of the max-min balancing protocol on the y axis.  Network
sizes are perfect squares so the grid topologies are defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import render_series
from repro.analysis.statistics import mean_confidence_interval
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RuntimeOptions,
    resolve_trial_seeds,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome, full_mode_enabled
from repro.experiments.figure4 import FIGURE4_TOPOLOGIES
from repro.experiments.registry import register

#: Quick sweep (CI / benchmarks) and full sweep (REPRO_FULL=1) of |N|.
QUICK_NETWORK_SIZES: Tuple[int, ...] = (9, 16, 25)
FULL_NETWORK_SIZES: Tuple[int, ...] = (9, 16, 25, 36, 49)


@dataclass
class Figure5Result(ExperimentResult):
    """Swap overhead per (topology, |N|)."""

    experiment = "figure5"
    COLUMNS = ("topology", "n_nodes", "overhead_exact", "overhead_paper")

    distillation: float
    network_sizes: Tuple[int, ...]
    topologies: Tuple[str, ...]
    outcomes: List[TrialOutcome] = field(default_factory=list)

    def series(self, variant: str = "exact") -> Dict[str, Dict[int, float]]:
        """``topology -> {|N| -> mean overhead}``."""
        table: Dict[str, Dict[int, List[float]]] = {name: {} for name in self.topologies}
        for outcome in self.outcomes:
            value = outcome.overhead_exact if variant == "exact" else outcome.overhead_paper
            table[outcome.config.topology].setdefault(outcome.config.n_nodes, []).append(value)
        return {
            name: {n: mean_confidence_interval(values)[0] for n, values in points.items()}
            for name, points in table.items()
        }

    def rows(self) -> List[Tuple]:
        rows: List[Tuple] = []
        exact = self.series("exact")
        paper = self.series("paper")
        for topology in self.topologies:
            for size in self.network_sizes:
                if size in exact.get(topology, {}):
                    rows.append((topology, size, exact[topology][size], paper[topology][size]))
        return rows

    def format_report(self) -> str:
        return render_series(
            "|N|",
            self.series("exact"),
            title=f"Figure 5: swap overhead vs network size (D={self.distillation:g})",
        )


def figure5_configs(
    distillation: float = 1.0,
    network_sizes: Optional[Sequence[int]] = None,
    topologies: Sequence[str] = FIGURE4_TOPOLOGIES,
    seeds: Sequence[int] = (1,),
    n_requests: int = 50,
    n_consumer_pairs: int = 35,
    balancer: str = "naive",
) -> List[ExperimentConfig]:
    """The config grid behind Figure 5."""
    if network_sizes is None:
        network_sizes = FULL_NETWORK_SIZES if full_mode_enabled() else QUICK_NETWORK_SIZES
    configs: List[ExperimentConfig] = []
    for topology in topologies:
        for n_nodes in network_sizes:
            for seed in seeds:
                configs.append(
                    ExperimentConfig(
                        topology=topology,
                        n_nodes=int(n_nodes),
                        distillation=float(distillation),
                        n_consumer_pairs=n_consumer_pairs,
                        n_requests=n_requests,
                        seed=seed,
                        balancer=balancer,
                    )
                )
    return configs


@register
class Figure5Experiment(Experiment):
    """Figure 5 as a registered experiment (sweep over ``|N|``)."""

    name = "figure5"
    summary = "Swap overhead vs network size |N| at D=1 on the paper's three topologies (Figure 5)."
    supports_runtime = True
    params = (
        ParamSpec(
            "network_sizes",
            int,
            None,
            "network sizes |N| to sweep (default: quick/full preset)",
            flag="--sizes",
            nargs="*",
        ),
        ParamSpec(
            "seeds",
            int,
            1,
            "number of seeded trials per point (programmatically: explicit seed sequence)",
        ),
        ParamSpec(
            "master_seed",
            int,
            None,
            "derive the per-point trial seeds from this master seed (default: use seeds 1..N)",
            flag="--master-seed",
            metavar="SEED",
        ),
        ParamSpec("n_requests", int, 50, "length of the consumption request sequence", flag="--requests"),
        ParamSpec(
            "balancer",
            str,
            "naive",
            "balancing engine: full-rescan 'naive' or dirty-set 'incremental' (identical results)",
            choices=("naive", "incremental"),
        ),
        ParamSpec("distillation", float, 1.0, "distillation overhead D", cli=False),
        ParamSpec("n_consumer_pairs", int, 35, "consumer pairs drawn per trial", cli=False),
        ParamSpec("topologies", tuple, FIGURE4_TOPOLOGIES, "topology families to sweep", cli=False),
    )

    def normalize(self, params):
        params["seeds"] = resolve_trial_seeds(params["seeds"], params["master_seed"])
        if not params["network_sizes"]:
            params["network_sizes"] = None  # bare --sizes means "use the preset"
        return params

    def build_grid(self, params) -> List[ExperimentConfig]:
        return figure5_configs(
            distillation=params["distillation"],
            network_sizes=params["network_sizes"],
            topologies=params["topologies"],
            seeds=params["seeds"],
            n_requests=params["n_requests"],
            n_consumer_pairs=params["n_consumer_pairs"],
            balancer=params["balancer"],
        )

    def reduce(self, outcomes: List[TrialOutcome], params) -> Figure5Result:
        sizes = tuple(sorted({outcome.config.n_nodes for outcome in outcomes}))
        return Figure5Result(
            distillation=params["distillation"],
            network_sizes=sizes,
            topologies=tuple(params["topologies"]),
            outcomes=outcomes,
        )


def run_figure5(
    distillation: float = 1.0,
    network_sizes: Optional[Sequence[int]] = None,
    topologies: Sequence[str] = FIGURE4_TOPOLOGIES,
    seeds: Sequence[int] = (1,),
    n_requests: int = 50,
    n_consumer_pairs: int = 35,
    n_workers: Optional[int] = 1,
    cache=None,
    balancer: str = "naive",
) -> Figure5Result:
    """Run the Figure 5 sweep and return the collected series.

    Backward-compatible wrapper over :class:`Figure5Experiment`;
    ``n_workers`` and ``cache`` thread into :class:`RuntimeOptions` and the
    series stay bit-identical for any worker count or balancing engine.
    """
    return Figure5Experiment().run(
        runtime=RuntimeOptions(workers=n_workers, cache=cache),
        distillation=distillation,
        network_sizes=network_sizes,
        topologies=topologies,
        seeds=seeds,
        n_requests=n_requests,
        n_consumer_pairs=n_consumer_pairs,
        balancer=balancer,
    )
