"""Traffic experiment: protocol comparison under realistic arrival load.

The paper's comparison (E4) serves a fixed ordered request sequence that
exists in full from round zero.  This experiment replays the same protocol
line-up against *time-varying* demand from the workload subsystem
(:mod:`repro.workloads`): Poisson arrivals, bursty MMPP arrivals and
diurnal rate modulation, with per-node admission control, traffic classes
and queueing policies.  Each (workload, protocol) cell reports the SLO
attainment per traffic class -- p50/p95/p99 arrival-to-service latency,
deadline-miss, drop and rejection rates -- on top of the usual satisfaction
and swap counts.

``--workload SPEC`` restricts the sweep to one spec from the
``"name:key=value,..."`` mini-language; ``--smoke`` shrinks everything to
one small fast cell (the CI gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RowTable,
    RuntimeOptions,
    columns_of,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome
from repro.experiments.registry import register
from repro.experiments.runner import PROTOCOL_NAMES
from repro.workloads.registry import (
    DEFAULT_WORKLOAD,
    WORKLOAD_NAMES,
    draws_groups,
    is_timed_workload,
    validate_workload_spec,
)
from repro.workloads.slo import TOTAL_KEY

#: The load sweep run when ``--workload`` is not given: one spec per
#: arrival family, each exercising a different subsystem feature
#: (admission control, heavy-tailed batches + priority queueing,
#: deadline-aware dropping).
DEFAULT_TRAFFIC_WORKLOADS: Tuple[str, ...] = (
    "poisson:rate=2,admission_rate=1.5,admission_burst=6",
    "bursty:rate_low=0.5,rate_high=6,batch_alpha=1.2,queue=priority",
    "diurnal:rate=2,amplitude=0.9,period=40,queue=deadline",
)

#: The single cell the --smoke gate runs.
SMOKE_WORKLOAD = "poisson:rate=2,admission_rate=1,admission_burst=3"
SMOKE_PROTOCOLS: Tuple[str, ...] = ("path-oblivious", "planned-connectionless")


@dataclass
class TrafficRow:
    """SLO attainment of one traffic class in one (workload, protocol) cell."""

    workload: str
    protocol: str
    traffic_class: str
    arrivals: int
    admitted: int
    rejected: int
    dropped: int
    satisfied: int
    p50_latency: float
    p95_latency: float
    p99_latency: float
    deadline_miss_rate: float
    rounds: int
    swaps: int


@dataclass
class TrafficResult(ExperimentResult):
    """Per-class SLO rows for every (workload, protocol) cell."""

    experiment = "traffic"
    COLUMNS = columns_of(TrafficRow)

    workloads: Tuple[str, ...]
    protocols: Tuple[str, ...]
    seed: int
    rows: List[TrafficRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rows = RowTable(self.rows)

    def totals(self) -> List[TrafficRow]:
        """The cross-class aggregate row of every cell."""
        return [row for row in self.rows if row.traffic_class == TOTAL_KEY]

    def format_report(self) -> str:
        headers = (
            "workload",
            "protocol",
            "class",
            "arrived",
            "admitted",
            "rejected",
            "dropped",
            "served",
            "p50",
            "p95",
            "p99",
            "miss rate",
        )
        table_rows = [
            (
                row.workload,
                row.protocol,
                row.traffic_class,
                row.arrivals,
                row.admitted,
                row.rejected,
                row.dropped,
                row.satisfied,
                row.p50_latency,
                row.p95_latency,
                row.p99_latency,
                f"{row.deadline_miss_rate:.3f}",
            )
            for row in self.rows
        ]
        lines = [
            format_table(
                headers,
                table_rows,
                title="Traffic: SLO attainment under arrival load",
                float_format="{:.1f}",
            )
        ]
        for row in self.totals():
            lines.append(
                f"  {row.workload} / {row.protocol}: {row.satisfied}/{row.arrivals} served "
                f"in {row.rounds} rounds ({row.swaps} swaps, "
                f"p95 latency {row.p95_latency:.1f} rounds)"
            )
        return "\n".join(lines)


def _workload_spec(value: str) -> str:
    """argparse type: validate a workload spec string, keeping it verbatim."""
    return validate_workload_spec(value)


@register
class TrafficExperiment(Experiment):
    """The arrival-load protocol comparison as a registered experiment."""

    name = "traffic"
    summary = "Protocol comparison under Poisson/bursty/diurnal arrival load with SLO metrics."
    supports_runtime = True
    params = (
        ParamSpec(
            "workload",
            _workload_spec,
            None,
            "run only this workload, as 'name' or 'name:key=value,...' (names: "
            + ", ".join(name for name in WORKLOAD_NAMES if name != DEFAULT_WORKLOAD)
            + "; default: the Poisson/bursty/diurnal sweep)",
            metavar="SPEC",
        ),
        ParamSpec("topology", str, "cycle", "topology family of the shared workload"),
        ParamSpec("n_nodes", int, 16, "number of nodes |N|", flag="--nodes"),
        ParamSpec(
            "n_requests",
            int,
            40,
            "arrival budget per cell (the trace is truncated to this many requests)",
            flag="--requests",
        ),
        ParamSpec(
            "smoke",
            bool,
            False,
            "shrink the sweep to one small fast cell (CI gate)",
            is_flag=True,
        ),
        ParamSpec("workloads", tuple, None, "explicit workload spec list", cli=False),
        ParamSpec("protocols", tuple, PROTOCOL_NAMES, "protocols to run", cli=False),
        ParamSpec("n_consumer_pairs", int, 12, "consumer pairs drawn per trial", cli=False),
        ParamSpec("seed", int, 1, "workload seed", cli=False),
        ParamSpec("max_rounds", int, 20_000, "safety cap on simulated rounds", cli=False),
    )

    def normalize(self, params):
        workloads = params["workloads"]
        if workloads is None:
            single = params["workload"]
            workloads = (single,) if single else DEFAULT_TRAFFIC_WORKLOADS
        specs = tuple(validate_workload_spec(spec) for spec in workloads)
        for spec in specs:
            if not is_timed_workload(spec):
                raise ValueError(
                    "the traffic experiment needs an arrival-timed workload, "
                    f"not {spec!r} (the paper's sequence workload has no arrival process)"
                )
        params["workloads"] = specs
        params["protocols"] = tuple(params["protocols"])
        group_specs = tuple(spec for spec in specs if draws_groups(spec))
        if group_specs:
            # The planned baselines serve 2-party requests only; a
            # group-emitting workload would trip their guard mid-trial.
            # Prune them from the default protocol set; an explicit
            # planned choice is a config error.
            planned = tuple(p for p in params["protocols"] if p.startswith("planned-"))
            if params["protocols"] == tuple(PROTOCOL_NAMES):
                params["protocols"] = tuple(
                    p for p in params["protocols"] if not p.startswith("planned-")
                )
            elif planned:
                raise ValueError(
                    "planned protocols serve 2-party requests only; drop "
                    f"{', '.join(planned)} or the group-emitting workload "
                    f"({', '.join(group_specs)})"
                )
        if params["smoke"]:
            params["workloads"] = (SMOKE_WORKLOAD,)
            params["protocols"] = SMOKE_PROTOCOLS
            params["n_nodes"] = min(params["n_nodes"], 9)
            params["n_requests"] = min(params["n_requests"], 12)
            params["n_consumer_pairs"] = min(params["n_consumer_pairs"], 6)
            params["max_rounds"] = min(params["max_rounds"], 3000)
        return params

    def build_grid(self, params) -> List[ExperimentConfig]:
        return [
            ExperimentConfig(
                topology=params["topology"],
                n_nodes=params["n_nodes"],
                n_consumer_pairs=params["n_consumer_pairs"],
                n_requests=params["n_requests"],
                seed=params["seed"],
                protocol=protocol,
                workload=spec,
                max_rounds=params["max_rounds"],
            )
            for spec in params["workloads"]
            for protocol in params["protocols"]
        ]

    def reduce(self, outcomes: List[TrialOutcome], params) -> TrafficResult:
        result = TrafficResult(
            workloads=params["workloads"],
            protocols=params["protocols"],
            seed=params["seed"],
        )
        for outcome in outcomes:
            for class_name in sorted(outcome.slo):
                row = outcome.slo[class_name]
                result.rows.append(
                    TrafficRow(
                        workload=outcome.config.workload,
                        protocol=outcome.config.protocol,
                        traffic_class=class_name,
                        arrivals=int(row["arrivals"]),
                        admitted=int(row["admitted"]),
                        rejected=int(row["rejected"]),
                        dropped=int(row["dropped"]),
                        satisfied=int(row["satisfied"]),
                        p50_latency=float(row["p50_latency"]),
                        p95_latency=float(row["p95_latency"]),
                        p99_latency=float(row["p99_latency"]),
                        deadline_miss_rate=float(row["deadline_miss_rate"]),
                        rounds=outcome.rounds,
                        swaps=outcome.swaps_performed,
                    )
                )
        return result


def run_traffic(
    workloads: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    topology: str = "cycle",
    n_nodes: int = 16,
    n_requests: int = 40,
    n_consumer_pairs: int = 12,
    seed: int = 1,
    smoke: bool = False,
    max_rounds: int = 20_000,
    n_workers: Optional[int] = 1,
    cache=None,
) -> TrafficResult:
    """Run the arrival-load protocol comparison (wrapper over
    :class:`TrafficExperiment`)."""
    return TrafficExperiment().run(
        runtime=RuntimeOptions(workers=n_workers, cache=cache),
        workloads=tuple(workloads) if workloads is not None else None,
        protocols=tuple(protocols),
        topology=topology,
        n_nodes=n_nodes,
        n_requests=n_requests,
        n_consumer_pairs=n_consumer_pairs,
        seed=seed,
        smoke=smoke,
        max_rounds=max_rounds,
    )
