"""Resilience experiment: balancing under fault-and-churn scenarios.

The paper's evaluation is static; this experiment asks what happens to
path-oblivious balancing when the network misbehaves.  Each cell runs the
same seeded workload twice -- once undisturbed and once under a dynamic
scenario (:mod:`repro.scenarios`) -- and with *both* balancing engines, so
every row doubles as an end-to-end check that the incremental engine's
dirty-set invalidation reaches the identical fixed points under failures.

Reported per cell:

* **recovery ratio** -- completion rounds under churn over completion
  rounds of the static baseline (how much the disturbance cost),
* **fairness under churn** -- Jain's index over per-consumer-pair service,
  zero-filled for starved pairs,
* satisfaction, swap and waiting-time counts from the underlying
  :class:`~repro.experiments.config.TrialOutcome` rows.

``smoke=True`` shrinks the sweep to one small cell; the CI workflow runs
``repro resilience --smoke`` as an end-to-end churn gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fairness import jains_index
from repro.analysis.reporting import format_table
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RowTable,
    RuntimeOptions,
    columns_of,
    resolve_trial_seeds,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome, full_mode_enabled
from repro.experiments.registry import register
from repro.scenarios.registry import NO_SCENARIO, SCENARIO_NAMES, validate_scenario_spec

#: Default churn scenario when the caller does not pick one.
DEFAULT_RESILIENCE_SCENARIO = "link-churn"

#: Quick sweep (CI) and full sweep (REPRO_FULL=1) of |N|.
QUICK_RESILIENCE_SIZES: Tuple[int, ...] = (25, 50)
FULL_RESILIENCE_SIZES: Tuple[int, ...] = (25, 100, 250, 500)

#: The single cell the --smoke gate runs.
SMOKE_SIZES: Tuple[int, ...] = (25,)


@dataclass
class ResilienceRow:
    """One (|N|, scenario, balancer, seed) cell."""

    n_nodes: int
    scenario: str
    balancer: str
    seed: int
    rounds: int
    requests_satisfied: int
    requests_total: int
    swaps: int
    mean_waiting_rounds: float
    fairness: float

    @property
    def satisfied_fraction(self) -> float:
        if self.requests_total == 0:
            return 1.0
        return self.requests_satisfied / self.requests_total


@dataclass
class ResilienceResult(ExperimentResult):
    """All resilience rows plus the churn-vs-static accessors."""

    experiment = "resilience"
    COLUMNS = columns_of(ResilienceRow)

    scenario: str
    sizes: Tuple[int, ...]
    balancers: Tuple[str, ...]
    seeds: Tuple[int, ...]
    rows: List[ResilienceRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Structured records stay attribute-accessible (result.rows);
        # calling the table yields the uniform contract's flat tuples.
        self.rows = RowTable(self.rows)

    def row_for(
        self, n_nodes: int, scenario: str, balancer: str, seed: int
    ) -> Optional[ResilienceRow]:
        for row in self.rows:
            if (row.n_nodes, row.scenario, row.balancer, row.seed) == (
                n_nodes,
                scenario,
                balancer,
                seed,
            ):
                return row
        return None

    def recovery_ratio(self, n_nodes: int, balancer: str, seed: int) -> Optional[float]:
        """Completion rounds under churn / static baseline rounds for one cell."""
        static = self.row_for(n_nodes, NO_SCENARIO, balancer, seed)
        churned = self.row_for(n_nodes, self.scenario, balancer, seed)
        if static is None or churned is None or static.rounds == 0:
            return None
        return churned.rounds / static.rounds

    def format_report(self) -> str:
        headers = (
            "|N|",
            "scenario",
            "balancer",
            "seed",
            "rounds",
            "satisfied",
            "swaps",
            "wait",
            "fairness",
        )
        table_rows = [
            (
                row.n_nodes,
                row.scenario,
                row.balancer,
                row.seed,
                row.rounds,
                f"{row.requests_satisfied}/{row.requests_total}",
                row.swaps,
                f"{row.mean_waiting_rounds:.1f}",
                f"{row.fairness:.3f}",
            )
            for row in self.rows
        ]
        lines = [
            format_table(
                headers, table_rows, title=f"Resilience under scenario '{self.scenario}'"
            )
        ]
        for size in self.sizes:
            for seed in self.seeds:
                ratio = self.recovery_ratio(size, self.balancers[0], seed)
                if ratio is not None:
                    lines.append(
                        f"  |N|={size} seed={seed}: churn cost {ratio:.2f}x the "
                        "static completion rounds"
                    )
        return "\n".join(lines)


def _fairness(outcome: TrialOutcome) -> float:
    """Jain's index over per-consumer-pair service, zero-filling starved pairs."""
    served = list(outcome.consumption_by_pair.values())
    starved = outcome.config.n_consumer_pairs - len(served)
    values = served + [0] * max(starved, 0)
    if not values:
        return 1.0
    return jains_index(values)


def _scenario_spec(value: str) -> str:
    """argparse type: validate a scenario spec string, keeping it verbatim."""
    return validate_scenario_spec(value)


@register
class ResilienceExperiment(Experiment):
    """The fault-and-churn sweep as a registered experiment.

    When several balancer engines are requested, each (size, scenario, seed)
    cell is asserted to produce identical rounds, swap counts and
    per-consumer service across engines -- the incremental engine's
    bit-identical-under-failures contract, checked end to end.
    """

    name = "resilience"
    summary = "Recovery time and fairness under fault-and-churn scenarios vs the static baseline."
    supports_runtime = True
    params = (
        ParamSpec(
            "sizes",
            int,
            None,
            "network sizes |N| to sweep (default: quick/full preset)",
            nargs="*",
        ),
        ParamSpec(
            "scenario",
            _scenario_spec,
            DEFAULT_RESILIENCE_SCENARIO,
            "dynamic scenario, as 'name' or 'name:key=value,...' (names: "
            + ", ".join(name for name in SCENARIO_NAMES if name != "none")
            + ")",
            metavar="SPEC",
        ),
        ParamSpec(
            "seeds",
            int,
            1,
            "number of seeded trials per cell (programmatically: explicit seed sequence)",
        ),
        ParamSpec(
            "master_seed",
            int,
            None,
            "derive the per-cell trial seeds from this master seed (default: use seeds 1..N)",
            flag="--master-seed",
            metavar="SEED",
        ),
        ParamSpec("n_requests", int, 50, "length of the consumption request sequence", flag="--requests"),
        ParamSpec("topology", str, "cycle", "topology family of the workload"),
        ParamSpec(
            "balancer",
            str,
            None,
            "run only this balancing engine (default: both, which also cross-checks each cell)",
            choices=("naive", "incremental"),
        ),
        ParamSpec(
            "smoke",
            bool,
            False,
            "shrink the sweep to one small fast cell (CI gate)",
            is_flag=True,
        ),
        ParamSpec("balancers", tuple, None, "explicit engine list (overrides balancer)", cli=False),
        ParamSpec("max_rounds", int, 20_000, "safety cap on simulated rounds", cli=False),
    )

    def normalize(self, params):
        scenario = validate_scenario_spec(params["scenario"])
        if scenario == NO_SCENARIO:
            raise ValueError("the resilience experiment needs a real scenario, not 'none'")
        params["scenario"] = scenario
        balancers = params["balancers"]
        if balancers is None:
            balancer = params["balancer"]
            balancers = (balancer,) if balancer else ("naive", "incremental")
        params["balancers"] = tuple(balancers)
        seeds = resolve_trial_seeds(params["seeds"], params["master_seed"])
        sizes = params["sizes"]
        if params["smoke"]:
            sizes = SMOKE_SIZES
            seeds = seeds[:1] or (1,)
            params["n_requests"] = min(params["n_requests"], 20)
            params["max_rounds"] = min(params["max_rounds"], 3000)
        elif not sizes:  # None or a bare --sizes: use the preset
            sizes = FULL_RESILIENCE_SIZES if full_mode_enabled() else QUICK_RESILIENCE_SIZES
        params["sizes"] = tuple(int(size) for size in sizes)
        params["seeds"] = tuple(int(seed) for seed in seeds)
        return params

    def build_grid(self, params) -> List[ExperimentConfig]:
        return [
            ExperimentConfig(
                topology=params["topology"],
                n_nodes=size,
                n_requests=params["n_requests"],
                seed=seed,
                balancer=balancer,
                scenario=spec,
                max_rounds=params["max_rounds"],
            )
            for size in params["sizes"]
            for spec in (NO_SCENARIO, params["scenario"])
            for balancer in params["balancers"]
            for seed in params["seeds"]
        ]

    def reduce(self, outcomes: List[TrialOutcome], params) -> ResilienceResult:
        result = ResilienceResult(
            scenario=params["scenario"],
            sizes=params["sizes"],
            balancers=params["balancers"],
            seeds=params["seeds"],
        )
        by_cell: Dict[Tuple[int, str, int], List[TrialOutcome]] = {}
        for outcome in outcomes:
            config = outcome.config
            result.rows.append(
                ResilienceRow(
                    n_nodes=config.n_nodes,
                    scenario=config.scenario,
                    balancer=config.balancer,
                    seed=config.seed,
                    rounds=outcome.rounds,
                    requests_satisfied=outcome.requests_satisfied,
                    requests_total=outcome.requests_total,
                    swaps=outcome.swaps_performed,
                    mean_waiting_rounds=outcome.mean_waiting_rounds,
                    fairness=_fairness(outcome),
                )
            )
            by_cell.setdefault((config.n_nodes, config.scenario, config.seed), []).append(outcome)

        for (size, spec, seed), cell in by_cell.items():
            reference = cell[0]
            for other in cell[1:]:
                if (
                    other.rounds != reference.rounds
                    or other.swaps_performed != reference.swaps_performed
                    or other.consumption_by_pair != reference.consumption_by_pair
                ):
                    raise RuntimeError(
                        f"balancer engines disagree under scenario {spec!r} "
                        f"(|N|={size}, seed={seed}): {reference.config.balancer} vs "
                        f"{other.config.balancer}"
                    )
        return result


def run_resilience(
    sizes: Optional[Sequence[int]] = None,
    scenario: str = DEFAULT_RESILIENCE_SCENARIO,
    seeds: Sequence[int] = (1,),
    n_requests: int = 50,
    topology: str = "cycle",
    balancers: Sequence[str] = ("naive", "incremental"),
    smoke: bool = False,
    max_rounds: int = 20_000,
    n_workers: Optional[int] = 1,
    cache=None,
) -> ResilienceResult:
    """Run the fault-and-churn sweep (static baseline vs ``scenario``).

    Backward-compatible wrapper over :class:`ResilienceExperiment`; when
    several balancer engines run, every cell is cross-checked bit-identical.
    """
    return ResilienceExperiment().run(
        runtime=RuntimeOptions(workers=n_workers, cache=cache),
        sizes=sizes,
        scenario=scenario,
        seeds=seeds,
        n_requests=n_requests,
        topology=topology,
        balancers=tuple(balancers),
        smoke=smoke,
        max_rounds=max_rounds,
    )
