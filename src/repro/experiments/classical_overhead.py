"""Experiment E6: classical control-plane overhead.

Sections 2 and 6 of the paper flag classical signalling as the path-oblivious
approach's main cost.  This experiment drives a balancing workload while two
dissemination strategies account their classical traffic side by side:

* full flooding of every node's count vector every round (the paper's base
  knowledge assumption), and
* the BitTorrent-like choke/unchoke gossip sketched in Section 6, at several
  fanouts.

Reported per strategy: total messages, total bits, bits per round, and for
gossip the knowledge quality it buys (coverage and staleness error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.api import Experiment, ExperimentResult, ParamSpec, RowTable, columns_of
from repro.experiments.registry import register
from repro.classical.control_plane import FloodingControlPlane
from repro.classical.gossip import ChokeUnchokeGossip
from repro.core.maxmin.balancer import MaxMinBalancer
from repro.core.maxmin.ledger import PairCountLedger
from repro.network.demand import RequestSequence, select_consumer_pairs
from repro.network.generation import DeterministicGeneration
from repro.network.topologies import topology_from_name
from repro.sim.rng import RandomStreams


@dataclass
class ClassicalOverheadRow:
    """Control-plane cost (and knowledge quality) of one dissemination strategy."""

    strategy: str
    rounds: int
    messages: int
    bits: int
    bits_per_round: float
    mean_coverage: float
    mean_staleness: float


@dataclass
class ClassicalOverheadResult(ExperimentResult):
    experiment = "classical"
    COLUMNS = columns_of(ClassicalOverheadRow)

    topology: str
    n_nodes: int
    rows: List[ClassicalOverheadRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Structured records stay attribute-accessible (result.rows);
        # calling the table yields the uniform contract's flat tuples.
        self.rows = RowTable(self.rows)

    def format_report(self) -> str:
        headers = ("strategy", "rounds", "messages", "bits", "bits/round", "coverage", "staleness")
        table_rows = [
            (
                row.strategy,
                row.rounds,
                row.messages,
                row.bits,
                row.bits_per_round,
                row.mean_coverage,
                row.mean_staleness,
            )
            for row in self.rows
        ]
        title = f"E6: classical control-plane overhead ({self.topology}, |N|={self.n_nodes})"
        return format_table(headers, table_rows, title=title)


def _account_overheads(
    topology_name: str,
    n_nodes: int,
    rounds: int,
    gossip_fanouts: Sequence[int],
    seed: int,
) -> Tuple[str, List[ClassicalOverheadRow]]:
    """Run the balancing workload and account each strategy's classical cost.

    Returns the built topology's display name plus one row per strategy.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    streams = RandomStreams(seed)
    topology = topology_from_name(topology_name, n_nodes, rng=streams.get("topology"))
    generation = DeterministicGeneration(topology)

    # One shared balancing workload: generation feeds the ledger, the balancer
    # spreads pairs; the control planes observe the same evolving state.
    ledger = PairCountLedger(topology.nodes)
    balancer = MaxMinBalancer(ledger, overheads=1.0, rng=streams.get("balancer"), keep_records=False)
    flooding = FloodingControlPlane(topology, ledger)
    gossips = {
        fanout: ChokeUnchokeGossip(
            topology,
            ledger,
            unchoked_slots=fanout,
            rng=streams.get(f"gossip-{fanout}"),
        )
        for fanout in gossip_fanouts
    }

    for round_index in range(rounds):
        for edge, count in generation.pairs_for_round(round_index, streams.get("generation")).items():
            ledger.add(edge[0], edge[1], count)
        balancer.run_round(round_index)
        flooding.run_round(round_index)
        for gossip in gossips.values():
            gossip.run_round(round_index)

    result_rows: List[ClassicalOverheadRow] = []
    summary = flooding.summary()
    result_rows.append(
        ClassicalOverheadRow(
            strategy="flooding",
            rounds=int(summary["rounds"]),
            messages=int(summary["messages"]),
            bits=int(summary["bits"]),
            bits_per_round=summary["bits_per_round"],
            mean_coverage=1.0,
            mean_staleness=0.0,
        )
    )
    for fanout, gossip in gossips.items():
        summary = gossip.summary()
        coverages = [gossip.coverage(node) for node in topology.nodes]
        staleness = [gossip.staleness_error(node) for node in topology.nodes]
        staleness = [value for value in staleness if value == value]  # drop NaNs
        result_rows.append(
            ClassicalOverheadRow(
                strategy=f"gossip-fanout{fanout}",
                rounds=int(summary["rounds"]),
                messages=int(summary["messages"]),
                bits=int(summary["bits"]),
                bits_per_round=summary["bits_per_round"],
                mean_coverage=float(np.mean(coverages)) if coverages else 0.0,
                mean_staleness=float(np.mean(staleness)) if staleness else 0.0,
            )
        )
    return topology.name, result_rows


@register
class ClassicalOverheadExperiment(Experiment):
    """The control-plane accounting as a registered experiment."""

    name = "classical"
    summary = "Classical control-plane cost: flooding vs choke/unchoke gossip on one workload (E6)."
    supports_runtime = False
    params = (
        ParamSpec("n_nodes", int, 25, "number of nodes |N|", flag="--nodes"),
        ParamSpec("topology_name", str, "random-grid", "topology family of the workload", cli=False),
        ParamSpec("rounds", int, 50, "balancing rounds to drive", cli=False),
        ParamSpec("gossip_fanouts", tuple, (2, 4), "gossip unchoke fanouts to account", cli=False),
        ParamSpec("seed", int, 11, "workload seed", cli=False),
    )

    def build_grid(self, params):
        return params

    def execute(self, grid, runtime) -> Tuple[str, List[ClassicalOverheadRow]]:
        return _account_overheads(
            topology_name=grid["topology_name"],
            n_nodes=grid["n_nodes"],
            rounds=grid["rounds"],
            gossip_fanouts=grid["gossip_fanouts"],
            seed=grid["seed"],
        )

    def reduce(self, outcomes, params) -> ClassicalOverheadResult:
        topology_label, rows = outcomes
        return ClassicalOverheadResult(
            topology=topology_label, n_nodes=params["n_nodes"], rows=rows
        )


def run_classical_overhead(
    topology_name: str = "random-grid",
    n_nodes: int = 16,
    rounds: int = 50,
    gossip_fanouts: Sequence[int] = (2, 4),
    seed: int = 11,
) -> ClassicalOverheadResult:
    """Run a balancing workload and account dissemination costs for each strategy.

    Backward-compatible wrapper over :class:`ClassicalOverheadExperiment`.
    """
    return ClassicalOverheadExperiment().run(
        topology_name=topology_name,
        n_nodes=n_nodes,
        rounds=rounds,
        gossip_fanouts=gossip_fanouts,
        seed=seed,
    )
