"""Experiment harness.

Every experiment is a registered :class:`~repro.experiments.api.Experiment`
subclass: a ``name``, a one-line ``summary``, a typed
:class:`~repro.experiments.api.ParamSpec` table, and the
``build_grid`` / ``execute`` / ``reduce`` hooks.  The registry
(:mod:`repro.experiments.registry`) is the single source of truth the CLI,
the docs gates and programmatic callers iterate -- adding a workload means
registering one class, nothing else.

One module per experiment of the per-experiment index in DESIGN.md:

* :mod:`repro.experiments.figure4` -- swap overhead vs distillation
  overhead ``D`` (paper Figure 4),
* :mod:`repro.experiments.figure5` -- swap overhead vs network size
  ``|N|`` (paper Figure 5),
* :mod:`repro.experiments.lp_validation` -- the Section 3 LP objectives,
* :mod:`repro.experiments.comparison` -- path-oblivious vs planned-path
  baselines,
* :mod:`repro.experiments.ablations` -- design-choice ablations,
* :mod:`repro.experiments.classical_overhead` -- control-plane cost,
* :mod:`repro.experiments.scaling` -- max-min balancing on 200-1000-node
  Waxman/grid/Erdős–Rényi topologies (naive vs incremental engine),
* :mod:`repro.experiments.resilience` -- recovery time and fairness under
  fault-and-churn scenarios (:mod:`repro.scenarios`) vs the static baseline,
* :mod:`repro.experiments.traffic` -- protocol comparison under
  Poisson/bursty/diurnal arrival load with per-class SLO metrics
  (:mod:`repro.workloads`),
* :mod:`repro.experiments.multicast` -- shared (star-of-pairs + fusion) vs
  independent-sessions GHZ group serving over group sizes 2-5
  (:mod:`repro.protocols.fusion`).

Results satisfy the uniform :class:`~repro.experiments.api.ExperimentResult`
contract: ``series()`` / ``rows()`` / ``format_report()`` plus the
machine-readable ``to_json()`` / ``to_csv()`` / ``write()`` surface
(schema: :mod:`repro.experiments.schema`).  The historical ``run_*``
functions remain as thin wrappers over the registered classes and return
bit-identical reports.

Sweep-style experiments execute through the runtime layer
(:mod:`repro.runtime`) -- ``RuntimeOptions(workers=..., cache=...)`` (or
the legacy ``n_workers``/``cache`` keywords) parallelise trials across
processes and skip cells already present in the content-addressed result
cache, without changing a single reported number.
"""

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RuntimeOptions,
    resolve_trial_seeds,
)
from repro.experiments.config import (
    ExperimentConfig,
    TrialOutcome,
    full_mode_enabled,
)
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    iter_experiments,
    register,
)
from repro.experiments.runner import run_many, run_trial
from repro.experiments.figure4 import Figure4Experiment, Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Experiment, Figure5Result, run_figure5
from repro.experiments.lp_validation import (
    LPValidationExperiment,
    LPValidationResult,
    run_lp_validation,
)
from repro.experiments.comparison import ComparisonExperiment, ComparisonResult, run_comparison
from repro.experiments.ablations import AblationResult, AblationsExperiment, run_ablations
from repro.experiments.classical_overhead import (
    ClassicalOverheadExperiment,
    ClassicalOverheadResult,
    run_classical_overhead,
)
from repro.experiments.multicast import (
    MulticastExperiment,
    MulticastResult,
    run_multicast,
)
from repro.experiments.resilience import ResilienceExperiment, ResilienceResult, run_resilience
from repro.experiments.scaling import ScalingExperiment, ScalingResult, run_scaling
from repro.experiments.traffic import TrafficExperiment, TrafficResult, run_traffic

__all__ = [
    "AblationResult",
    "AblationsExperiment",
    "ClassicalOverheadExperiment",
    "ClassicalOverheadResult",
    "ComparisonExperiment",
    "ComparisonResult",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "Figure4Experiment",
    "Figure4Result",
    "Figure5Experiment",
    "Figure5Result",
    "LPValidationExperiment",
    "LPValidationResult",
    "MulticastExperiment",
    "MulticastResult",
    "ParamSpec",
    "ResilienceExperiment",
    "ResilienceResult",
    "RuntimeOptions",
    "ScalingExperiment",
    "ScalingResult",
    "TrafficExperiment",
    "TrafficResult",
    "TrialOutcome",
    "experiment_names",
    "full_mode_enabled",
    "get_experiment",
    "iter_experiments",
    "register",
    "resolve_trial_seeds",
    "run_ablations",
    "run_classical_overhead",
    "run_comparison",
    "run_figure4",
    "run_figure5",
    "run_lp_validation",
    "run_many",
    "run_multicast",
    "run_resilience",
    "run_scaling",
    "run_traffic",
    "run_trial",
]
