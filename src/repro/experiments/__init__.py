"""Experiment harness.

One module per experiment of the per-experiment index in DESIGN.md:

* :mod:`repro.experiments.figure4` -- swap overhead vs distillation
  overhead ``D`` (paper Figure 4),
* :mod:`repro.experiments.figure5` -- swap overhead vs network size
  ``|N|`` (paper Figure 5),
* :mod:`repro.experiments.lp_validation` -- the Section 3 LP objectives,
* :mod:`repro.experiments.comparison` -- path-oblivious vs planned-path
  baselines,
* :mod:`repro.experiments.ablations` -- design-choice ablations,
* :mod:`repro.experiments.classical_overhead` -- control-plane cost,
* :mod:`repro.experiments.scaling` -- max-min balancing on 200-1000-node
  Waxman/grid/Erdős–Rényi topologies (naive vs incremental engine),
* :mod:`repro.experiments.resilience` -- recovery time and fairness under
  fault-and-churn scenarios (:mod:`repro.scenarios`) vs the static baseline.

Every experiment exposes a ``run_*`` function returning a result object with
``series()`` / ``rows()`` accessors and a ``format_report()`` renderer; the
CLI (:mod:`repro.cli`) and the benchmark suite are thin wrappers over these.

Sweep-style experiments (figure4, figure5, comparison, ablations) accept
``n_workers`` and ``cache`` arguments and execute through the runtime layer
(:mod:`repro.runtime`), which parallelises trials across processes and
skips cells already present in the content-addressed result cache --
without changing a single reported number.
"""

from repro.experiments.config import (
    ExperimentConfig,
    TrialOutcome,
    full_mode_enabled,
)
from repro.experiments.runner import run_many, run_trial
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.lp_validation import LPValidationResult, run_lp_validation
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.ablations import AblationResult, run_ablations
from repro.experiments.classical_overhead import ClassicalOverheadResult, run_classical_overhead
from repro.experiments.resilience import ResilienceResult, run_resilience
from repro.experiments.scaling import ScalingResult, run_scaling

__all__ = [
    "AblationResult",
    "ClassicalOverheadResult",
    "ComparisonResult",
    "ExperimentConfig",
    "Figure4Result",
    "Figure5Result",
    "LPValidationResult",
    "ResilienceResult",
    "ScalingResult",
    "TrialOutcome",
    "full_mode_enabled",
    "run_ablations",
    "run_classical_overhead",
    "run_comparison",
    "run_figure4",
    "run_figure5",
    "run_lp_validation",
    "run_many",
    "run_resilience",
    "run_scaling",
    "run_trial",
]
