"""Building and running individual simulation trials from a config.

:func:`run_trial` is the runtime layer's unit of work: a *pure function of
its config* (every random draw derives from ``config.seed`` via named
streams), which is what lets :class:`repro.runtime.SweepRunner` parallelise
and cache trials without changing any result.  :func:`run_many` is the
sweep entry point every experiment module goes through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.cache import ResultCache

from repro.analysis.overhead import swap_overhead_from_result
from repro.analysis.starvation import starvation_report
from repro.core.lp.extensions import PairOverheads
from repro.core.maxmin.knowledge import GlobalKnowledge, GossipKnowledge, KnowledgeModel
from repro.core.maxmin.policy import (
    BalancingPolicy,
    DistanceWeightedPolicy,
    MinRecipientCountPolicy,
    RandomPreferablePolicy,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome
from repro.network.demand import RequestSequence
from repro.obs.spans import span
from repro.network.generation import make_generation_process
from repro.network.topologies import topology_from_name
from repro.network.topology import Topology
from repro.protocols.base import SwappingProtocol
from repro.protocols.oblivious import PathObliviousProtocol
from repro.protocols.planned import (
    ConnectionOrientedProtocol,
    ConnectionlessProtocol,
    OnDemandProtocol,
)
from repro.scenarios.registry import build_scenario
from repro.sim.rng import RandomStreams
from repro.workloads.base import WorkloadBuild
from repro.workloads.queueing import TimedRequestSequence
from repro.workloads.registry import build_workload
from repro.workloads.slo import slo_as_dict, slo_summary

PROTOCOL_NAMES = (
    "path-oblivious",
    "planned-connection-oriented",
    "planned-connectionless",
    "planned-on-demand",
)


def build_topology(config: ExperimentConfig, streams: RandomStreams) -> Topology:
    """Construct the trial's generation graph from its config."""
    kwargs = {}
    if config.topology == "random-grid" and config.extra_edge_fraction > 0:
        kwargs["extra_edge_fraction"] = config.extra_edge_fraction
    topology = topology_from_name(
        config.topology, config.n_nodes, rng=streams.get("topology"), **kwargs
    )
    if config.qec_overhead > 1.0:
        topology = topology.scale_generation_rates(1.0 / config.qec_overhead)
    return topology


def build_workload_requests(
    config: ExperimentConfig, topology: Topology, streams: RandomStreams
) -> WorkloadBuild:
    """Materialise the config's workload spec for one trial.

    The default ``"sequence"`` spec reproduces the paper's §5 generation
    bit-identically (same consumer-pair draw, same ordered stream); other
    specs produce arrival-timed, admission-controlled streams
    (:mod:`repro.workloads`).
    """
    return build_workload(
        config.workload,
        topology=topology,
        n_consumer_pairs=config.n_consumer_pairs,
        n_requests=config.n_requests,
        streams=streams,
    )


def build_requests(
    config: ExperimentConfig, topology: Topology, streams: RandomStreams
) -> RequestSequence:
    """Draw the config's request stream (paper §5 by default; see
    :func:`build_workload_requests` for the metadata-carrying variant)."""
    return build_workload_requests(config, topology, streams).requests


def _build_policy(config: ExperimentConfig, topology: Topology) -> Optional[BalancingPolicy]:
    if config.policy == "min-recipient":
        return MinRecipientCountPolicy()
    if config.policy == "random":
        return RandomPreferablePolicy()
    if config.policy == "distance-weighted":
        return DistanceWeightedPolicy(topology, max_detour=config.policy_max_detour)
    raise ValueError(
        f"unknown policy {config.policy!r}; choose min-recipient, random or distance-weighted"
    )


def build_protocol(
    config: ExperimentConfig, topology: Topology, requests: RequestSequence, streams: RandomStreams
) -> SwappingProtocol:
    """Instantiate the protocol named by the config."""
    scenario = build_scenario(
        config.scenario, topology, streams=streams, horizon=config.max_rounds
    )
    if scenario is not None:
        # The scenario mutates the topology as the run progresses; give the
        # protocol its own copy so the caller's topology stays the static
        # reference the post-run analyses (overhead, starvation) compare
        # against.
        topology = topology.copy()
    overheads = PairOverheads.uniform(
        distillation=config.distillation, loss=config.loss_factor
    )
    generation = make_generation_process(config.generation_process, topology)
    common = dict(
        topology=topology,
        requests=requests,
        overheads=overheads,
        generation=generation,
        streams=streams,
        max_rounds=config.max_rounds,
        consumptions_per_round=config.consumptions_per_round,
        scenario=scenario,
    )
    if config.protocol == "path-oblivious":
        protocol = PathObliviousProtocol(
            policy=None,  # placeholder, replaced below once the ledger exists
            swaps_per_node_per_round=config.swaps_per_node_per_round,
            use_hybrid_fallback=config.use_hybrid_fallback,
            balancer_engine=config.balancer,
            **common,
        )
        protocol.balancer.policy = _build_policy(config, topology) or protocol.balancer.policy
        if config.knowledge == "gossip":
            protocol.balancer.knowledge = GossipKnowledge(
                protocol.ledger, fanout=config.gossip_fanout
            )
        elif config.knowledge != "global":
            raise ValueError(f"unknown knowledge model {config.knowledge!r}")
        return protocol
    if config.protocol == "planned-connection-oriented":
        return ConnectionOrientedProtocol(**common)
    if config.protocol == "planned-connectionless":
        return ConnectionlessProtocol(window=config.window, **common)
    if config.protocol == "planned-on-demand":
        return OnDemandProtocol(**common)
    raise ValueError(f"unknown protocol {config.protocol!r}; choose from {PROTOCOL_NAMES}")


def run_trial(config: ExperimentConfig) -> TrialOutcome:
    """Run one full trial and reduce it to a :class:`TrialOutcome`.

    Every stage is wrapped in an observation-only telemetry span (no-ops
    unless ``REPRO_TELEMETRY`` is set; see :mod:`repro.obs.spans`): spans
    read the wall clock but never any RNG stream, so the outcome is
    byte-identical with telemetry on or off.
    """
    with span(
        "trial.run",
        protocol=config.protocol,
        topology=config.topology,
        n_nodes=config.n_nodes,
        seed=config.seed,
    ):
        streams = RandomStreams(config.seed)
        with span("trial.topology"):
            topology = build_topology(config, streams)
        with span("trial.workload"):
            workload = build_workload_requests(config, topology, streams)
        requests = workload.requests
        with span("trial.routing"):
            protocol = build_protocol(config, topology, requests, streams)
        with span("trial.rounds"):
            result = protocol.run()
        with span("trial.reduce"):
            return _reduce_trial(config, topology, workload, requests, protocol, result)


def _reduce_trial(config, topology, workload, requests, protocol, result) -> TrialOutcome:
    """Fold one protocol run into its :class:`TrialOutcome` (the reduce stage)."""
    exact = swap_overhead_from_result(
        topology, result, distillation=config.distillation, variant="exact"
    )
    paper = swap_overhead_from_result(
        topology, result, distillation=config.distillation, variant="paper"
    )
    starvation = starvation_report(topology, result)
    classical = result.classical_overhead or {}
    slo = {}
    if isinstance(requests, TimedRequestSequence):
        slo = slo_as_dict(slo_summary(requests.requests(), horizon=result.rounds))

    return TrialOutcome(
        config=config,
        topology_name=topology.name,
        rounds=result.rounds,
        swaps_performed=result.swaps_performed,
        requests_total=result.requests_total,
        requests_satisfied=result.requests_satisfied,
        pairs_generated=result.pairs_generated,
        pairs_consumed=result.pairs_consumed,
        pairs_remaining=result.pairs_remaining,
        overhead_exact=exact.overhead,
        overhead_paper=paper.overhead,
        optimal_swaps_exact=exact.optimal_swaps,
        optimal_swaps_paper=paper.optimal_swaps,
        mean_waiting_rounds=result.mean_waiting_rounds(),
        starvation_ratio=starvation.starvation_ratio,
        classical_messages=int(classical.get("messages", 0)),
        classical_entries=int(classical.get("entries", 0)),
        swaps_by_node=result.swaps_by_node,
        consumption_by_pair=protocol.requests.consumption_counts(),
        slo=slo,
        effective_consumer_pairs=len(workload.consumer_pairs),
        workload_warnings=workload.warnings,
        effective_consumer_groups=(
            len(workload.consumer_groups) if workload.consumer_groups else None
        ),
        fusions_performed=result.fusions_performed,
        trace_dropped=result.trace_dropped,
    )


def run_many(
    configs: Iterable[ExperimentConfig],
    n_workers: Optional[int] = 1,
    cache: Optional["ResultCache"] = None,
) -> List[TrialOutcome]:
    """Run every config and return outcomes in config order.

    Delegates to :class:`repro.runtime.SweepRunner`: trials fan out across
    ``n_workers`` processes (``None`` = one per CPU) and, when a ``cache``
    is supplied, already-computed cells are skipped.  Results are
    bit-identical regardless of ``n_workers`` or cache state.
    """
    from repro.runtime.sweep import SweepRunner

    return SweepRunner(n_workers=n_workers, cache=cache).run(list(configs))
