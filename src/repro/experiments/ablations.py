"""Experiment E5: ablations over the design choices DESIGN.md calls out.

Each ablation varies exactly one knob of the path-oblivious protocol on a
fixed workload:

* ``swap-rate``      -- the per-node swaps-per-round rate (the paper claims
  the results are insensitive to it),
* ``policy``         -- candidate selection rule (paper's min-recipient vs
  random vs the distance-weighted refinement of §6),
* ``knowledge``      -- global counts vs gossip with various fanouts (§6),
* ``hybrid``         -- pure balancing vs balancing + targeted fallback (§6),
* ``density``        -- extra generation edges beyond bare connectivity on
  the random grid (the "well-provisioned network" argument of §2),
* ``recurrence``     -- exact vs paper-literal overhead denominator (a
  measurement ablation: same runs, different metric),
* ``balancer``       -- naive full-rescan vs incremental dirty-set engine
  (an implementation ablation: the two must report identical physics, so
  this axis doubles as an end-to-end equivalence check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ParamSpec,
    RowTable,
    RuntimeOptions,
    columns_of,
)
from repro.experiments.config import ExperimentConfig, TrialOutcome
from repro.experiments.registry import register

#: The ablation axes this experiment knows how to run.
ABLATION_AXES: Tuple[str, ...] = (
    "swap-rate",
    "policy",
    "knowledge",
    "hybrid",
    "density",
    "recurrence",
    "balancer",
)


@dataclass
class AblationRow:
    """One ablation variant's headline numbers."""

    axis: str
    variant: str
    overhead_exact: float
    overhead_paper: float
    swaps: int
    rounds: int
    satisfied: str
    mean_wait: float


@dataclass
class AblationResult(ExperimentResult):
    """All ablation rows plus the raw outcomes."""

    experiment = "ablations"
    COLUMNS = columns_of(AblationRow)

    base_config: ExperimentConfig
    rows: List[AblationRow] = field(default_factory=list)
    outcomes: List[TrialOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Structured records stay attribute-accessible (result.rows);
        # calling the table yields the uniform contract's flat tuples.
        self.rows = RowTable(self.rows)

    def rows_for(self, axis: str) -> List[AblationRow]:
        return [row for row in self.rows if row.axis == axis]

    def format_report(self) -> str:
        headers = ("axis", "variant", "overhead", "overhead(paper)", "swaps", "rounds", "satisfied", "mean wait")
        table_rows = [
            (
                row.axis,
                row.variant,
                row.overhead_exact,
                row.overhead_paper,
                row.swaps,
                row.rounds,
                row.satisfied,
                row.mean_wait,
            )
            for row in self.rows
        ]
        title = (
            f"E5: ablations ({self.base_config.topology}, |N|={self.base_config.n_nodes}, "
            f"D={self.base_config.distillation:g})"
        )
        return format_table(headers, table_rows, title=title)


def _record(result: AblationResult, axis: str, variant: str, outcome: TrialOutcome) -> None:
    result.outcomes.append(outcome)
    result.rows.append(
        AblationRow(
            axis=axis,
            variant=variant,
            overhead_exact=outcome.overhead_exact,
            overhead_paper=outcome.overhead_paper,
            swaps=outcome.swaps_performed,
            rounds=outcome.rounds,
            satisfied=f"{outcome.requests_satisfied}/{outcome.requests_total}",
            mean_wait=outcome.mean_waiting_rounds,
        )
    )


def ablation_variants(
    base: ExperimentConfig, axes: Sequence[str] = ABLATION_AXES
) -> List[Tuple[str, str, ExperimentConfig]]:
    """The flat ``(axis, variant, config)`` grid behind :func:`run_ablations`."""
    unknown = [axis for axis in axes if axis not in ABLATION_AXES]
    if unknown:
        raise ValueError(f"unknown ablation axes {unknown}; choose from {ABLATION_AXES}")
    variants: List[Tuple[str, str, ExperimentConfig]] = []

    if "swap-rate" in axes:
        for rate in (1, 2, 4):
            variants.append(
                ("swap-rate", f"{rate}/node/round", base.with_(swaps_per_node_per_round=rate))
            )

    if "policy" in axes:
        for policy in ("min-recipient", "random", "distance-weighted"):
            config = base.with_(policy=policy)
            if policy == "distance-weighted":
                config = config.with_(policy_max_detour=2)
            variants.append(("policy", policy, config))

    if "knowledge" in axes:
        variants.append(("knowledge", "global", base))
        for fanout in (2, 4):
            variants.append(
                (
                    "knowledge",
                    f"gossip-fanout{fanout}",
                    base.with_(knowledge="gossip", gossip_fanout=fanout),
                )
            )

    if "hybrid" in axes:
        variants.append(("hybrid", "pure-oblivious", base))
        variants.append(("hybrid", "with-fallback", base.with_(use_hybrid_fallback=True)))

    if "density" in axes:
        for fraction in (0.0, 0.25, 0.5):
            variants.append(
                (
                    "density",
                    f"extra-edges={fraction:g}",
                    base.with_(topology="random-grid", extra_edge_fraction=fraction),
                )
            )

    if "recurrence" in axes:
        variants.append(("recurrence", "exact-denominator", base))

    if "balancer" in axes:
        for engine in ("naive", "incremental"):
            variants.append(("balancer", engine, base.with_(balancer=engine)))

    return variants


def _base_config(params) -> ExperimentConfig:
    return ExperimentConfig(
        topology=params["topology"],
        n_nodes=params["n_nodes"],
        distillation=params["distillation"],
        n_requests=params["n_requests"],
        n_consumer_pairs=params["n_consumer_pairs"],
        seed=params["seed"],
        balancer=params["balancer"],
    )


@register
class AblationsExperiment(Experiment):
    """The design-choice ablations as a registered experiment.

    The full variant grid is materialised up front and executed as one
    sweep through the runtime layer, so every variant (the base config
    appears several times; :func:`repro.experiments.runner.run_trial` is
    pure, so duplicates are identical) can run in parallel and hit the
    result cache.
    """

    name = "ablations"
    summary = "One-knob-at-a-time ablations of the protocol's design choices (E5, Sections 4/6)."
    supports_runtime = True
    params = (
        ParamSpec("n_nodes", int, 25, "number of nodes |N|", flag="--nodes"),
        ParamSpec("n_requests", int, 50, "length of the consumption request sequence", flag="--requests"),
        ParamSpec(
            "balancer",
            str,
            "naive",
            "balancing engine the non-balancer axes run under",
            choices=("naive", "incremental"),
        ),
        ParamSpec("axes", tuple, ABLATION_AXES, "ablation axes to run", cli=False),
        ParamSpec("topology", str, "random-grid", "topology family of the base workload", cli=False),
        ParamSpec("distillation", float, 2.0, "distillation overhead D of the base workload", cli=False),
        ParamSpec("n_consumer_pairs", int, 15, "consumer pairs drawn per trial", cli=False),
        ParamSpec("seed", int, 5, "workload seed", cli=False),
    )

    def build_grid(self, params) -> List[ExperimentConfig]:
        variants = ablation_variants(_base_config(params), params["axes"])
        return [config for _, _, config in variants]

    def reduce(self, outcomes: List[TrialOutcome], params) -> AblationResult:
        base = _base_config(params)
        # ablation_variants is deterministic in (base, axes), so the labels
        # rebuilt here line up 1:1 with the executed grid.
        variants = ablation_variants(base, params["axes"])
        result = AblationResult(base_config=base)
        recurrence_outcome: Optional[TrialOutcome] = None
        for (axis, variant, _), outcome in zip(variants, outcomes):
            _record(result, axis, variant, outcome)
            if axis == "recurrence":
                recurrence_outcome = outcome

        if recurrence_outcome is not None:
            outcome = recurrence_outcome
            # Same run, re-scored under the paper-literal denominator.
            result.rows.append(
                AblationRow(
                    axis="recurrence",
                    variant="paper-denominator",
                    overhead_exact=outcome.overhead_paper,
                    overhead_paper=outcome.overhead_paper,
                    swaps=outcome.swaps_performed,
                    rounds=outcome.rounds,
                    satisfied=f"{outcome.requests_satisfied}/{outcome.requests_total}",
                    mean_wait=outcome.mean_waiting_rounds,
                )
            )

        return result


def run_ablations(
    axes: Sequence[str] = ABLATION_AXES,
    topology: str = "random-grid",
    n_nodes: int = 16,
    distillation: float = 2.0,
    n_requests: int = 30,
    n_consumer_pairs: int = 15,
    seed: int = 5,
    n_workers: Optional[int] = 1,
    cache=None,
    balancer: str = "naive",
) -> AblationResult:
    """Run the requested ablation axes on a shared base workload.

    Backward-compatible wrapper over :class:`AblationsExperiment`.
    """
    return AblationsExperiment().run(
        runtime=RuntimeOptions(workers=n_workers, cache=cache),
        axes=tuple(axes),
        topology=topology,
        n_nodes=n_nodes,
        distillation=distillation,
        n_requests=n_requests,
        n_consumer_pairs=n_consumer_pairs,
        seed=seed,
        balancer=balancer,
    )
