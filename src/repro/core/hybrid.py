"""Hybrid oblivious + minimal planning (paper, Section 6).

The pure balancing protocol can starve long-distance consumers: pairs they
need get usurped by closer consumers.  The paper suggests using the
oblivious process as *seeding* and, when a consumption request is not
immediately satisfiable, finding a shortest path over the **current
entanglement graph** (whose edges are node pairs that already share enough
Bell pairs) and performing just the swaps along that path.  Because the
entanglement graph contains long "shortcut" edges created by earlier
balancing swaps, that path can be much shorter than the generation-graph
path.

:class:`HybridPlanner` implements exactly that fallback on the count ledger.
"""

from __future__ import annotations

import collections
import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.lp.extensions import PairOverheads
from repro.core.maxmin.balancer import SwapRecord
from repro.core.maxmin.ledger import PairCountLedger
from repro.network.topology import EdgeKey, edge_key

NodeId = Hashable


def entanglement_graph(
    ledger: PairCountLedger, minimum_count: int = 1
) -> Dict[NodeId, List[NodeId]]:
    """Adjacency of the current entanglement graph.

    Two nodes are adjacent when they currently share at least
    ``minimum_count`` Bell pairs.
    """
    if minimum_count <= 0:
        raise ValueError(f"minimum_count must be positive, got {minimum_count}")
    adjacency: Dict[NodeId, List[NodeId]] = {node: [] for node in ledger.nodes}
    for (node_a, node_b), count in ledger.nonzero_pairs().items():
        if count >= minimum_count:
            adjacency[node_a].append(node_b)
            adjacency[node_b].append(node_a)
    return adjacency


def shortest_entanglement_path(
    ledger: PairCountLedger,
    source: NodeId,
    target: NodeId,
    minimum_count: int = 1,
) -> Optional[List[NodeId]]:
    """BFS shortest path between ``source`` and ``target`` over the entanglement graph."""
    if source == target:
        return [source]
    adjacency = entanglement_graph(ledger, minimum_count)
    if source not in adjacency or target not in adjacency:
        return None
    visited = {source}
    predecessors: Dict[NodeId, NodeId] = {}
    frontier = collections.deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in adjacency[node]:
            if neighbor in visited:
                continue
            visited.add(neighbor)
            predecessors[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(predecessors[path[-1]])
                return list(reversed(path))
            frontier.append(neighbor)
    return None


class HybridPlanner:
    """Fallback planner that completes a requested pair with targeted swaps.

    Parameters
    ----------
    ledger:
        The shared pair-count ledger (also used by the balancer).
    overheads:
        Distillation overheads; a float is treated as a uniform ``D``.
    max_path_hops:
        Paths longer than this over the entanglement graph are not
        attempted (the multiplicative ``D`` cost of long targeted chains
        grows quickly; ``None`` = no limit).
    """

    def __init__(
        self,
        ledger: PairCountLedger,
        overheads: Union[PairOverheads, float] = 1.0,
        max_path_hops: Optional[int] = None,
    ):
        self.ledger = ledger
        if isinstance(overheads, (int, float)):
            overheads = PairOverheads.uniform(distillation=float(overheads))
        self.overheads = overheads
        self.max_path_hops = max_path_hops
        self.swaps_performed = 0
        self.requests_completed = 0
        self.requests_declined = 0

    # ------------------------------------------------------------------ #
    # Cost accounting over the entanglement graph
    # ------------------------------------------------------------------ #
    def _cost(self, node_a: NodeId, node_b: NodeId) -> int:
        return int(math.ceil(self.overheads.distillation_for(node_a, node_b)))

    def _requirements(self, path: Sequence[NodeId], multiplicity: int) -> Tuple[Dict[EdgeKey, int], int]:
        """Pairs needed per entanglement edge, and swaps needed, to deliver ``multiplicity`` pairs.

        Hop-by-hop construction along ``path``: delivering ``m`` pairs
        ``(path[0], path[j])`` for ``j >= 2`` takes ``m`` swaps at
        ``path[j-1]``, consuming ``m * D`` prefix pairs ``(path[0], path[j-1])``
        (recursively delivered) and ``m * D`` edge pairs
        ``(path[j-1], path[j])``.  The multiplicative ``D`` factors are what
        make long targeted chains expensive when ``D > 1``.
        """
        if len(path) < 2:
            return {}, 0
        needs: Dict[EdgeKey, int] = {}
        swaps = 0
        source = path[0]
        copies = multiplicity
        for j in range(len(path) - 1, 0, -1):
            near, far = path[j - 1], path[j]
            if j == 1:
                # The first hop draws existing pairs straight from the ledger.
                edge = edge_key(source, far)
                needs[edge] = needs.get(edge, 0) + copies
                break
            edge = edge_key(near, far)
            needs[edge] = needs.get(edge, 0) + copies * self._cost(near, far)
            swaps += copies
            copies = copies * self._cost(source, near)
        return needs, swaps

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def try_satisfy(
        self, source: NodeId, target: NodeId, round_index: int = 0
    ) -> Optional[List[SwapRecord]]:
        """Attempt to build enough ``(source, target)`` pairs for one consumption.

        Returns the swaps performed (possibly an empty list when the pair
        already exists in sufficient quantity), or ``None`` when no
        affordable entanglement-graph path exists right now.  On success the
        ledger holds at least ``D_{source,target}`` pairs of
        ``(source, target)`` ready to be consumed by the caller.
        """
        required = self._cost(source, target)
        deficit = required - self.ledger.count(source, target)
        if deficit <= 0:
            return []

        path = shortest_entanglement_path(self.ledger, source, target, minimum_count=1)
        if path is None or len(path) < 2:
            self.requests_declined += 1
            return None
        if self.max_path_hops is not None and len(path) - 1 > self.max_path_hops:
            self.requests_declined += 1
            return None

        needs, _ = self._requirements(path, deficit)
        for edge, needed in needs.items():
            if self.ledger.count(*edge) < needed:
                self.requests_declined += 1
                return None

        records = self._execute(path, deficit, round_index)
        self.requests_completed += 1
        return records

    def _execute(self, path: Sequence[NodeId], multiplicity: int, round_index: int) -> List[SwapRecord]:
        """Perform the hop-by-hop swaps delivering ``multiplicity`` end-to-end pairs."""
        records: List[SwapRecord] = []
        source = path[0]

        def build(prefix_end_index: int, copies: int) -> None:
            """Ensure ``copies`` new pairs (source, path[prefix_end_index]) exist."""
            if prefix_end_index == 1:
                # The first hop uses existing entanglement-edge pairs directly;
                # feasibility was checked against the ledger before execution.
                return
            repeater = path[prefix_end_index - 1]
            far = path[prefix_end_index]
            prefix_cost = self._cost(source, repeater)
            edge_cost = self._cost(repeater, far)
            # Build all required prefix pairs first, then perform the swaps.
            build(prefix_end_index - 1, copies * prefix_cost)
            for _ in range(copies):
                self.ledger.remove(source, repeater, prefix_cost)
                self.ledger.remove(repeater, far, edge_cost)
                self.ledger.add(source, far, 1)
                self.swaps_performed += 1
                records.append(
                    SwapRecord(repeater=repeater, left=source, right=far, round_index=round_index)
                )

        build(len(path) - 1, multiplicity)
        return records
