"""Building the path-oblivious linear flow program.

The decision variables are the swap rates ``sigma_i(x, y)`` (one per ordered
choice of repeater ``i`` and unordered pair ``{x, y}`` with ``i`` not in the
pair), plus -- depending on the optimization objective -- per-pair generation
rates ``g(x, y)`` bounded by the physical capability ``gamma``, per-pair
consumption rates ``c(x, y)`` bounded by the demand ``kappa``, a uniform
scaling factor ``alpha``, and min/max auxiliary variables.

The only structural constraints are the per-pair steady-state balance
inequalities of Section 3.1/3.2:

``D_{x,y} ( c(x,y) + sum_i sigma_x(i,y) + sigma_y(i,x) )
    <=  L_{x,y} ( g(x,y) + sum_i sigma_i(x,y) )``

plus variable bounds.  Everything else (which objective, which variables are
free) is decided by :class:`~repro.core.lp.objectives.Objective`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.lp.extensions import PairOverheads
from repro.core.lp.objectives import Objective
from repro.network.demand import DemandMatrix
from repro.network.topology import EdgeKey, Topology, edge_key

NodeId = Hashable


class VariableIndex:
    """Maps structured variable names to dense column indices."""

    def __init__(self) -> None:
        self._names: List[Tuple] = []
        self._index: Dict[Tuple, int] = {}

    def add(self, name: Tuple) -> int:
        """Register ``name`` (idempotent) and return its column index."""
        if name in self._index:
            return self._index[name]
        index = len(self._names)
        self._names.append(name)
        self._index[name] = index
        return index

    def index_of(self, name: Tuple) -> int:
        return self._index[name]

    def __contains__(self, name: Tuple) -> bool:
        return name in self._index

    def names(self) -> List[Tuple]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)


@dataclass
class LinearProgram:
    """A linear program in the form scipy's ``linprog`` expects.

    ``minimize c @ x`` subject to ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``
    and per-variable ``bounds``.  ``maximize`` objectives are encoded by
    negating ``objective`` and setting ``sense`` so the solver can report
    the natural (non-negated) optimum.
    """

    variables: VariableIndex
    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: Optional[sparse.csr_matrix] = None
    b_eq: Optional[np.ndarray] = None
    bounds: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    sense: str = "min"
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        count = self.a_ub.shape[0] if self.a_ub is not None else 0
        if self.a_eq is not None:
            count += self.a_eq.shape[0]
        return count


class PathObliviousFlowProgram:
    """Builds the paper's LP for a topology, a demand matrix and overheads.

    Parameters
    ----------
    topology:
        The generation graph; its edge rates are the capabilities
        ``gamma_{x,y}`` (maximum generation rates).
    demand:
        Desired consumption rates ``kappa_{x,y}``.
    overheads:
        Distillation/loss overheads (defaults to ``D = L = 1``).
    qec_overhead:
        The QEC rate ``R``; generation capabilities are thinned to
        ``gamma / R`` per Section 3.2.
    """

    def __init__(
        self,
        topology: Topology,
        demand: DemandMatrix,
        overheads: Optional[PairOverheads] = None,
        qec_overhead: float = 1.0,
    ):
        if qec_overhead < 1.0:
            raise ValueError(f"QEC overhead R must be >= 1, got {qec_overhead}")
        if not topology.is_connected():
            raise ValueError(
                "the generation graph must be connected; disconnected components can "
                "never share Bell pairs (paper, Section 3)"
            )
        self.topology = topology
        self.demand = demand
        self.overheads = overheads if overheads is not None else PairOverheads()
        self.qec_overhead = float(qec_overhead)

        self.nodes: List[NodeId] = list(topology.nodes)
        self.pairs: List[EdgeKey] = sorted(topology.node_pairs(), key=repr)
        self._pair_set = set(self.pairs)

        for pair in demand.pairs():
            if pair[0] not in topology or pair[1] not in topology:
                raise ValueError(f"demand pair {pair} references nodes outside the topology")

    # ------------------------------------------------------------------ #
    # Capability lookups
    # ------------------------------------------------------------------ #
    def generation_capability(self, pair: EdgeKey) -> float:
        """``gamma_{x,y} / R``: the maximum usable generation rate of a pair."""
        return self.topology.generation_rate(*pair) / self.qec_overhead

    def demand_rate(self, pair: EdgeKey) -> float:
        """``kappa_{x,y}``: the desired consumption rate of a pair."""
        return self.demand.rate(*pair)

    def swap_triples(self) -> List[Tuple[NodeId, EdgeKey]]:
        """All ``(repeater, pair)`` combinations for which a swap variable exists."""
        triples: List[Tuple[NodeId, EdgeKey]] = []
        for pair in self.pairs:
            for node in self.nodes:
                if node not in pair:
                    triples.append((node, pair))
        return triples

    # ------------------------------------------------------------------ #
    # LP construction
    # ------------------------------------------------------------------ #
    def build(self, objective: Objective) -> LinearProgram:
        """Construct the :class:`LinearProgram` for the requested objective."""
        variables = VariableIndex()
        bounds: List[Tuple[float, Optional[float]]] = []

        def add_variable(name: Tuple, lower: float, upper: Optional[float]) -> int:
            index = variables.add(name)
            if index == len(bounds):
                bounds.append((lower, upper))
            return index

        # Swap-rate variables exist for every objective.
        for node, pair in self.swap_triples():
            add_variable(("sigma", node, pair), 0.0, None)

        generation_is_variable = objective.generation_is_variable()
        consumption_is_variable = objective.consumption_is_variable()
        uses_alpha = objective is Objective.MAX_PROPORTIONAL_ALPHA

        if generation_is_variable:
            for pair in self.pairs:
                capability = self.generation_capability(pair)
                if capability > 0:
                    add_variable(("g", pair), 0.0, capability)
        if consumption_is_variable:
            for pair in self.pairs:
                kappa = self.demand_rate(pair)
                if kappa > 0:
                    add_variable(("c", pair), 0.0, kappa)
        if uses_alpha:
            add_variable(("alpha",), 0.0, None)
        if objective is Objective.MIN_MAX_GENERATION:
            add_variable(("max_generation",), 0.0, None)
        if objective is Objective.MAX_MIN_CONSUMPTION:
            add_variable(("min_consumption",), 0.0, None)

        rows: List[Dict[int, float]] = []
        rhs: List[float] = []

        # Per-pair steady-state balance: departures <= arrivals.
        for pair in self.pairs:
            x, y = pair
            distillation = self.overheads.distillation_for(x, y)
            loss = self.overheads.loss_for(x, y)
            row: Dict[int, float] = {}
            constant = 0.0

            # Departures: consumption ...
            kappa = self.demand_rate(pair)
            if uses_alpha and kappa > 0:
                row[variables.index_of(("alpha",))] = (
                    row.get(variables.index_of(("alpha",)), 0.0) + distillation * kappa
                )
            elif consumption_is_variable and kappa > 0:
                row[variables.index_of(("c", pair))] = distillation
            else:
                constant += distillation * kappa

            # ... plus swaps at x or y that consume this pair.
            for node in self.nodes:
                if node in pair:
                    continue
                swap_at_x = ("sigma", x, edge_key(node, y))
                swap_at_y = ("sigma", y, edge_key(node, x))
                for name in (swap_at_x, swap_at_y):
                    index = variables.index_of(name)
                    row[index] = row.get(index, 0.0) + distillation

            # Arrivals: generation ...
            capability = self.generation_capability(pair)
            if generation_is_variable and capability > 0:
                index = variables.index_of(("g", pair))
                row[index] = row.get(index, 0.0) - loss
            else:
                constant -= loss * capability

            # ... plus swaps at third nodes that create this pair.
            for node in self.nodes:
                if node in pair:
                    continue
                index = variables.index_of(("sigma", node, pair))
                row[index] = row.get(index, 0.0) - loss

            rows.append(row)
            rhs.append(-constant)

        # Objective-specific auxiliary constraints.
        if objective is Objective.MIN_MAX_GENERATION:
            max_index = variables.index_of(("max_generation",))
            for pair in self.pairs:
                if ("g", pair) in variables:
                    rows.append({variables.index_of(("g", pair)): 1.0, max_index: -1.0})
                    rhs.append(0.0)
        if objective is Objective.MAX_MIN_CONSUMPTION:
            min_index = variables.index_of(("min_consumption",))
            for pair in self.pairs:
                if ("c", pair) in variables:
                    rows.append({min_index: 1.0, variables.index_of(("c", pair)): -1.0})
                    rhs.append(0.0)

        a_ub = sparse.lil_matrix((len(rows), len(variables)))
        for row_index, row in enumerate(rows):
            for column, value in row.items():
                a_ub[row_index, column] = value
        b_ub = np.array(rhs, dtype=float)

        objective_vector, sense = objective.build_objective_vector(variables, self)

        return LinearProgram(
            variables=variables,
            objective=objective_vector,
            a_ub=a_ub.tocsr(),
            b_ub=b_ub,
            bounds=bounds,
            sense=sense,
            metadata={
                "objective": objective,
                "n_nodes": len(self.nodes),
                "n_pairs": len(self.pairs),
                "qec_overhead": self.qec_overhead,
            },
        )
