"""Solving the path-oblivious flow program.

A thin wrapper around :func:`scipy.optimize.linprog` (HiGHS) that converts
the structured :class:`~repro.core.lp.formulation.LinearProgram` into the
solver's dense/sparse form and converts the raw solution vector back into
named swap/generation/consumption rates (:class:`LPSolution`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.lp.formulation import LinearProgram, PathObliviousFlowProgram
from repro.core.lp.objectives import Objective
from repro.network.topology import EdgeKey

NodeId = Hashable

#: Rates below this magnitude are treated as numerical zeros when reporting.
RATE_EPSILON = 1e-9


class InfeasibleProgramError(RuntimeError):
    """Raised when the LP has no feasible solution (demand cannot be met at all)."""


@dataclass
class LPSolution:
    """A solved path-oblivious flow program.

    Attributes
    ----------
    objective:
        Which objective was optimised.
    objective_value:
        The optimum in the objective's *natural* sense (already un-negated
        for maximisation objectives).
    swap_rates:
        ``sigma_i(x, y)`` keyed by ``(repeater, pair)``, zeros omitted.
    generation_rates / consumption_rates:
        The chosen ``g`` / ``c`` rates (for objectives where they are fixed,
        the fixed values are echoed here so downstream code never cares).
    alpha:
        The uniform demand scaling (only for
        :data:`Objective.MAX_PROPORTIONAL_ALPHA`).
    status / message:
        Raw solver status (0 = optimal) and message.
    """

    objective: Objective
    objective_value: float
    swap_rates: Dict[Tuple[NodeId, EdgeKey], float] = field(default_factory=dict)
    generation_rates: Dict[EdgeKey, float] = field(default_factory=dict)
    consumption_rates: Dict[EdgeKey, float] = field(default_factory=dict)
    alpha: Optional[float] = None
    status: int = 0
    message: str = ""

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_swap_rate(self) -> float:
        """Total swap rate across all repeaters and pairs."""
        return sum(self.swap_rates.values())

    def swap_rate_at(self, node: NodeId) -> float:
        """Total swap rate performed at one repeater."""
        return sum(rate for (repeater, _), rate in self.swap_rates.items() if repeater == node)

    def swap_load_by_node(self) -> Dict[NodeId, float]:
        """Swap rate per repeater (the LP's prediction of where swap work concentrates)."""
        load: Dict[NodeId, float] = {}
        for (repeater, _), rate in self.swap_rates.items():
            load[repeater] = load.get(repeater, 0.0) + rate
        return load

    def total_generation_rate(self) -> float:
        return sum(self.generation_rates.values())

    def total_consumption_rate(self) -> float:
        return sum(self.consumption_rates.values())

    def served_fraction(self, demanded_total: float) -> float:
        """Fraction of the demanded consumption rate actually served."""
        if demanded_total <= 0:
            return 1.0
        return self.total_consumption_rate() / demanded_total


def solve_linear_program(program: LinearProgram) -> Tuple[np.ndarray, float, int, str]:
    """Solve a generic :class:`LinearProgram`; return ``(x, optimum, status, message)``.

    The optimum is reported in the program's natural sense.
    """
    result = linprog(
        c=program.objective,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=program.bounds,
        method="highs",
    )
    if result.status == 4:
        # Numerical difficulties (typically extreme overhead scaling).  Retry
        # with the dual-simplex backend before concluding anything.
        result = linprog(
            c=program.objective,
            A_ub=program.a_ub,
            b_ub=program.b_ub,
            A_eq=program.a_eq,
            b_eq=program.b_eq,
            bounds=program.bounds,
            method="highs-ds",
            options={"presolve": False},
        )
    if result.status == 2 or (result.status == 4 and "nfeasible" in str(result.message)):
        raise InfeasibleProgramError(f"linear program is infeasible: {result.message}")
    if result.status != 0:
        raise RuntimeError(f"LP solver failed with status {result.status}: {result.message}")
    optimum = float(result.fun)
    if program.sense == "max":
        optimum = -optimum
    return np.asarray(result.x), optimum, int(result.status), str(result.message)


def solve_flow_program(
    program: PathObliviousFlowProgram, objective: Objective
) -> LPSolution:
    """Build and solve the flow program for ``objective``; return named rates."""
    linear_program = program.build(objective)
    solution_vector, optimum, status, message = solve_linear_program(linear_program)

    swap_rates: Dict[Tuple[NodeId, EdgeKey], float] = {}
    generation_rates: Dict[EdgeKey, float] = {}
    consumption_rates: Dict[EdgeKey, float] = {}
    alpha: Optional[float] = None

    for name in linear_program.variables.names():
        value = float(solution_vector[linear_program.variables.index_of(name)])
        if name[0] == "sigma":
            if value > RATE_EPSILON:
                swap_rates[(name[1], name[2])] = value
        elif name[0] == "g":
            if value > RATE_EPSILON:
                generation_rates[name[1]] = value
        elif name[0] == "c":
            if value > RATE_EPSILON:
                consumption_rates[name[1]] = value
        elif name[0] == "alpha":
            alpha = value

    # For objectives where generation/consumption are fixed inputs, echo them.
    if not objective.generation_is_variable():
        for pair in program.pairs:
            capability = program.generation_capability(pair)
            if capability > RATE_EPSILON:
                generation_rates[pair] = capability
    if not objective.consumption_is_variable():
        scaling = alpha if objective is Objective.MAX_PROPORTIONAL_ALPHA and alpha is not None else 1.0
        for pair in program.pairs:
            kappa = program.demand_rate(pair)
            if kappa > RATE_EPSILON:
                consumption_rates[pair] = kappa * scaling

    return LPSolution(
        objective=objective,
        objective_value=optimum,
        swap_rates=swap_rates,
        generation_rates=generation_rates,
        consumption_rates=consumption_rates,
        alpha=alpha,
        status=status,
        message=message,
    )
