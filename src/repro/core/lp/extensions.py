"""Per-pair overheads: distillation, decoherence loss, and QEC (paper, §3.2).

The LP of Section 3.1 is extended in Section 3.2 with three knobs:

* ``D_{x,y}`` -- the expected number of distillations needed before the pair
  ``[x, y]`` reaches usable fidelity; it multiplies the *departure* rate.
* ``L_{x,y}`` -- the fraction of fully distilled pairs that survive
  decoherence long enough to be used; it multiplies the *arrival* rate.
* ``R`` -- the QEC overhead (physical qubits per logical qubit), applied by
  thinning every generation rate to ``g / R``.

:class:`PairOverheads` bundles the per-pair ``D`` and ``L`` maps with
uniform defaults, and provides constructors deriving them from physical
parameters via :mod:`repro.quantum.distillation` and
:mod:`repro.quantum.decoherence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.network.topology import EdgeKey, Topology, edge_key
from repro.quantum.decoherence import DecoherenceModel, NoDecoherence
from repro.quantum.distillation import DistillationProtocol, distillation_overhead

NodeId = Hashable


@dataclass
class PairOverheads:
    """Distillation and loss overheads for every node pair.

    Attributes
    ----------
    default_distillation:
        The uniform ``D`` used for pairs without an explicit entry (the
        paper's experiments use a single uniform ``D``).
    default_loss:
        The uniform survival factor ``L`` in ``(0, 1]`` used for pairs
        without an explicit entry (1.0 = no decoherence loss, the paper's
        base assumption).
    distillation, loss:
        Optional per-pair overrides keyed by canonical edge key.
    """

    default_distillation: float = 1.0
    default_loss: float = 1.0
    distillation: Dict[EdgeKey, float] = field(default_factory=dict)
    loss: Dict[EdgeKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate_distillation(self.default_distillation)
        self._validate_loss(self.default_loss)
        for value in self.distillation.values():
            self._validate_distillation(value)
        for value in self.loss.values():
            self._validate_loss(value)

    @staticmethod
    def _validate_distillation(value: float) -> None:
        if value < 1.0:
            raise ValueError(f"distillation overhead D must be >= 1, got {value}")

    @staticmethod
    def _validate_loss(value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"loss factor L must be in (0, 1], got {value}")

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def distillation_for(self, node_a: NodeId, node_b: NodeId) -> float:
        """The overhead ``D_{x,y}`` for the pair ``{node_a, node_b}``."""
        return self.distillation.get(edge_key(node_a, node_b), self.default_distillation)

    def loss_for(self, node_a: NodeId, node_b: NodeId) -> float:
        """The survival factor ``L_{x,y}`` for the pair ``{node_a, node_b}``."""
        return self.loss.get(edge_key(node_a, node_b), self.default_loss)

    def set_distillation(self, node_a: NodeId, node_b: NodeId, value: float) -> None:
        self._validate_distillation(value)
        self.distillation[edge_key(node_a, node_b)] = float(value)

    def set_loss(self, node_a: NodeId, node_b: NodeId, value: float) -> None:
        self._validate_loss(value)
        self.loss[edge_key(node_a, node_b)] = float(value)

    # ------------------------------------------------------------------ #
    # Constructors from physics
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, distillation: float = 1.0, loss: float = 1.0) -> "PairOverheads":
        """Uniform overheads (the paper's experimental setting)."""
        return cls(default_distillation=distillation, default_loss=loss)

    @classmethod
    def from_fidelities(
        cls,
        link_fidelities: Mapping[EdgeKey, float],
        target_fidelity: float,
        protocol: DistillationProtocol = DistillationProtocol.BBPSSW,
        default_distillation: float = 1.0,
    ) -> "PairOverheads":
        """Derive per-pair ``D`` from per-link fidelities and a target fidelity."""
        overheads = cls(default_distillation=default_distillation)
        for edge, fidelity in link_fidelities.items():
            overheads.distillation[edge_key(*edge)] = distillation_overhead(
                fidelity, target_fidelity, protocol
            )
        return overheads

    @classmethod
    def with_decoherence(
        cls,
        decoherence: DecoherenceModel,
        mean_storage_time: float,
        distillation: float = 1.0,
    ) -> "PairOverheads":
        """Uniform overheads whose loss factor comes from a decoherence model."""
        model = decoherence if decoherence is not None else NoDecoherence()
        return cls(
            default_distillation=distillation,
            default_loss=model.loss_factor(mean_storage_time),
        )


def thin_generation_for_qec(topology: Topology, qec_overhead: float) -> Topology:
    """Apply the paper's QEC extension: every ``g(x, y)`` becomes ``g(x, y) / R``."""
    if qec_overhead < 1.0:
        raise ValueError(f"QEC overhead R must be >= 1, got {qec_overhead}")
    if qec_overhead == 1.0:
        return topology
    return topology.scale_generation_rates(1.0 / qec_overhead)
