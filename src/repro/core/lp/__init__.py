"""Path-oblivious linear-program formulation (paper, Section 3)."""

from repro.core.lp.extensions import PairOverheads
from repro.core.lp.formulation import LinearProgram, PathObliviousFlowProgram, VariableIndex
from repro.core.lp.objectives import Objective
from repro.core.lp.solver import LPSolution, solve_flow_program, solve_linear_program
from repro.core.lp.steady_state import SteadyStateRates, compute_rates, verify_steady_state

__all__ = [
    "LPSolution",
    "LinearProgram",
    "Objective",
    "PairOverheads",
    "PathObliviousFlowProgram",
    "SteadyStateRates",
    "VariableIndex",
    "compute_rates",
    "solve_flow_program",
    "solve_linear_program",
    "verify_steady_state",
]
