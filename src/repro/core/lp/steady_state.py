"""Steady-state rate analysis (paper, §3.1-3.2).

Given any assignment of generation, consumption and swap rates -- whether
produced by the LP solver or measured from a simulation run -- compute the
arrival rate ``r+(x, y)`` and departure rate ``r-(x, y)`` for every pair and
check the steady-state conditions the paper derives:

* ``r-(x, y) <= r+(x, y)`` for every pair (pairs cannot depart faster than
  they arrive),
* per-node budget ``sum_y c(x, y) <= sum_y g(x, y)`` (a node can never
  consume more than it generates, because swaps never increase the number
  of pairs held at a node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.lp.extensions import PairOverheads
from repro.network.topology import EdgeKey, Topology, edge_key

NodeId = Hashable
SwapRates = Mapping[Tuple[NodeId, EdgeKey], float]
PairRates = Mapping[EdgeKey, float]


@dataclass
class SteadyStateRates:
    """Arrival/departure rates per pair plus the violations found (if any)."""

    arrivals: Dict[EdgeKey, float] = field(default_factory=dict)
    departures: Dict[EdgeKey, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    def slack(self, pair: EdgeKey) -> float:
        """``r+ - r-`` for one pair (negative = violated)."""
        return self.arrivals.get(pair, 0.0) - self.departures.get(pair, 0.0)

    @property
    def is_consistent(self) -> bool:
        return not self.violations

    def total_arrival_rate(self) -> float:
        return sum(self.arrivals.values())

    def total_departure_rate(self) -> float:
        return sum(self.departures.values())


def compute_rates(
    nodes: List[NodeId],
    generation: PairRates,
    consumption: PairRates,
    swap_rates: SwapRates,
    overheads: Optional[PairOverheads] = None,
) -> SteadyStateRates:
    """Compute ``r+`` and ``r-`` for every pair appearing in any input.

    Implements equations (3) and (4) of the paper:

    ``r+(x,y) = L_{x,y} (g(x,y) + sum_i sigma_i(x,y))``
    ``r-(x,y) = D_{x,y} (c(x,y) + sum_i sigma_x(i,y) + sigma_y(i,x))``
    """
    overheads = overheads if overheads is not None else PairOverheads()
    arrivals: Dict[EdgeKey, float] = {}
    departures: Dict[EdgeKey, float] = {}

    def bump(table: Dict[EdgeKey, float], pair: EdgeKey, amount: float) -> None:
        table[pair] = table.get(pair, 0.0) + amount

    for pair, rate in generation.items():
        key = edge_key(*pair)
        bump(arrivals, key, overheads.loss_for(*key) * rate)
    for pair, rate in consumption.items():
        key = edge_key(*pair)
        bump(departures, key, overheads.distillation_for(*key) * rate)
    for (repeater, pair), rate in swap_rates.items():
        produced = edge_key(*pair)
        if repeater in produced:
            raise ValueError(f"swap rate at {repeater!r} for pair {produced} is degenerate")
        # The swap creates `produced` ...
        bump(arrivals, produced, overheads.loss_for(*produced) * rate)
        # ... and consumes (repeater, produced[0]) and (repeater, produced[1]).
        for endpoint in produced:
            consumed = edge_key(repeater, endpoint)
            bump(departures, consumed, overheads.distillation_for(*consumed) * rate)

    return SteadyStateRates(arrivals=arrivals, departures=departures)


def verify_steady_state(
    rates: SteadyStateRates,
    tolerance: float = 1e-6,
) -> SteadyStateRates:
    """Populate ``rates.violations`` with any pair whose departures exceed arrivals."""
    rates.violations = []
    pairs = set(rates.arrivals) | set(rates.departures)
    for pair in sorted(pairs, key=repr):
        slack = rates.slack(pair)
        if slack < -tolerance:
            rates.violations.append(
                f"pair {pair}: departures {rates.departures.get(pair, 0.0):.6f} exceed "
                f"arrivals {rates.arrivals.get(pair, 0.0):.6f} by {-slack:.6f}"
            )
    return rates


def node_budget_violations(
    topology: Topology,
    generation: PairRates,
    consumption: PairRates,
    tolerance: float = 1e-6,
) -> List[str]:
    """Check the per-node budget ``sum_y c(x,y) <= sum_y g(x,y)`` (paper, §3).

    A node that consumes more than it generates in aggregate can never keep
    up, regardless of how swaps are arranged, because a swap never increases
    the number of Bell-pair halves stored at any single node.
    """
    violations: List[str] = []
    for node in topology.nodes:
        generated = sum(rate for pair, rate in generation.items() if node in pair)
        consumed = sum(rate for pair, rate in consumption.items() if node in pair)
        if consumed > generated + tolerance:
            violations.append(
                f"node {node!r}: aggregate consumption {consumed:.6f} exceeds "
                f"aggregate generation {generated:.6f}"
            )
    return violations


def max_feasible_uniform_demand(
    topology: Topology,
    demand_pairs: List[EdgeKey],
    overheads: Optional[PairOverheads] = None,
    qec_overhead: float = 1.0,
) -> float:
    """Largest uniform per-pair rate ``kappa`` the network can serve on ``demand_pairs``.

    A convenience built on the ``MAX_PROPORTIONAL_ALPHA`` objective with unit
    demand on every listed pair; used by capacity-planning examples.
    """
    from repro.core.lp.formulation import PathObliviousFlowProgram
    from repro.core.lp.objectives import Objective
    from repro.core.lp.solver import solve_flow_program
    from repro.network.demand import uniform_demand

    if not demand_pairs:
        raise ValueError("demand_pairs must be non-empty")
    demand = uniform_demand(demand_pairs, rate=1.0)
    program = PathObliviousFlowProgram(
        topology, demand, overheads=overheads, qec_overhead=qec_overhead
    )
    solution = solve_flow_program(program, Objective.MAX_PROPORTIONAL_ALPHA)
    return solution.alpha if solution.alpha is not None else 0.0
