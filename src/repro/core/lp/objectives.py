"""Optimization objectives for the path-oblivious LP (paper, §3.3).

The paper lists the following possibilities, all of which are implemented:

* When generation suffices for the demand -- conserve generation: either
  minimize total generation (:data:`Objective.MIN_TOTAL_GENERATION`) or
  minimize the maximum per-pair generation rate
  (:data:`Objective.MIN_MAX_GENERATION`).
* When generation is insufficient -- reduce consumption fairly: maximize the
  total served consumption (:data:`Objective.MAX_TOTAL_CONSUMPTION`),
  maximize the minimum served consumption
  (:data:`Objective.MAX_MIN_CONSUMPTION`), or find the largest uniform
  scaling ``alpha`` with ``c = alpha * kappa``
  (:data:`Objective.MAX_PROPORTIONAL_ALPHA`).
* :data:`Objective.MIN_TOTAL_SWAPS` is an additional objective (not in the
  paper) used by the ablation experiments: it serves the full demand while
  minimizing the total swap rate, i.e. the LP analogue of the swap-overhead
  metric.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.lp.formulation import PathObliviousFlowProgram, VariableIndex


class Objective(enum.Enum):
    """Which quantity the flow program optimises."""

    MIN_TOTAL_GENERATION = "min_total_generation"
    MIN_MAX_GENERATION = "min_max_generation"
    MAX_TOTAL_CONSUMPTION = "max_total_consumption"
    MAX_MIN_CONSUMPTION = "max_min_consumption"
    MAX_PROPORTIONAL_ALPHA = "max_proportional_alpha"
    MIN_TOTAL_SWAPS = "min_total_swaps"

    # ------------------------------------------------------------------ #
    # Which quantities are variables under this objective
    # ------------------------------------------------------------------ #
    def generation_is_variable(self) -> bool:
        """Whether per-pair generation rates are decision variables.

        Generation is variable for the conservation objectives (we are
        choosing how much to generate) and for the consumption-maximising
        objectives (the paper: "also find {g(x,y)} and {c(x,y)} such that
        g <= gamma and c <= kappa").  For :data:`MIN_TOTAL_SWAPS` generation
        is pinned at capability, isolating the effect of swap placement.
        """
        return self in (
            Objective.MIN_TOTAL_GENERATION,
            Objective.MIN_MAX_GENERATION,
            Objective.MAX_TOTAL_CONSUMPTION,
            Objective.MAX_MIN_CONSUMPTION,
            Objective.MAX_PROPORTIONAL_ALPHA,
        )

    def consumption_is_variable(self) -> bool:
        """Whether per-pair consumption rates are decision variables."""
        return self in (Objective.MAX_TOTAL_CONSUMPTION, Objective.MAX_MIN_CONSUMPTION)

    def is_maximization(self) -> bool:
        return self in (
            Objective.MAX_TOTAL_CONSUMPTION,
            Objective.MAX_MIN_CONSUMPTION,
            Objective.MAX_PROPORTIONAL_ALPHA,
        )

    # ------------------------------------------------------------------ #
    # Objective vector
    # ------------------------------------------------------------------ #
    def build_objective_vector(
        self, variables: "VariableIndex", program: "PathObliviousFlowProgram"
    ) -> Tuple[np.ndarray, str]:
        """Return ``(coefficients, sense)`` for scipy's minimisation form.

        ``coefficients`` is already negated for maximization objectives so
        the solver always minimises; ``sense`` records the natural sense so
        reported optima can be un-negated.
        """
        coefficients = np.zeros(len(variables))
        if self is Objective.MIN_TOTAL_GENERATION:
            for name in variables.names():
                if name[0] == "g":
                    coefficients[variables.index_of(name)] = 1.0
            return coefficients, "min"
        if self is Objective.MIN_MAX_GENERATION:
            coefficients[variables.index_of(("max_generation",))] = 1.0
            return coefficients, "min"
        if self is Objective.MAX_TOTAL_CONSUMPTION:
            for name in variables.names():
                if name[0] == "c":
                    coefficients[variables.index_of(name)] = -1.0
            return coefficients, "max"
        if self is Objective.MAX_MIN_CONSUMPTION:
            coefficients[variables.index_of(("min_consumption",))] = -1.0
            return coefficients, "max"
        if self is Objective.MAX_PROPORTIONAL_ALPHA:
            coefficients[variables.index_of(("alpha",))] = -1.0
            return coefficients, "max"
        if self is Objective.MIN_TOTAL_SWAPS:
            for name in variables.names():
                if name[0] == "sigma":
                    coefficients[variables.index_of(name)] = 1.0
            return coefficients, "min"
        raise ValueError(f"unhandled objective {self}")  # pragma: no cover
