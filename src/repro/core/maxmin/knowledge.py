"""Knowledge models: what a node believes about remote pair counts.

The paper's base protocol assumes every node knows every count ``C_y(y')``
("the immediate global knowledge of all buffers"), acknowledging the
classical overhead this implies.  Section 6 sketches a BitTorrent-like
alternative where each node only tracks a small rotating subset of peers.

Both are implemented here behind a single interface so the balancer is
agnostic: :meth:`KnowledgeModel.recipient_count` answers "what does node
``x`` believe ``C_y(y')`` to be right now?" (or ``None`` for "x does not
know"), and :meth:`KnowledgeModel.refresh` advances the dissemination state
by one round while accounting for the classical messages exchanged.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.maxmin.ledger import PairCountLedger

NodeId = Hashable


class KnowledgeModel(abc.ABC):
    """Interface for count-dissemination models."""

    def __init__(self, ledger: PairCountLedger):
        self.ledger = ledger
        self.messages_sent = 0
        self.entries_sent = 0

    @abc.abstractmethod
    def recipient_count(self, observer: NodeId, node_a: NodeId, node_b: NodeId) -> Optional[int]:
        """What ``observer`` believes ``C_{node_a}(node_b)`` to be (``None`` = unknown)."""

    @abc.abstractmethod
    def refresh(self, round_index: int, rng: np.random.Generator) -> None:
        """Advance the dissemination protocol by one round."""

    def classical_overhead(self) -> Dict[str, int]:
        """Messages and count entries transmitted so far."""
        return {"messages": self.messages_sent, "entries": self.entries_sent}


class GlobalKnowledge(KnowledgeModel):
    """The paper's base assumption: every node sees the true global counts.

    Each refresh is accounted as every node broadcasting its count vector to
    every other node, which is the upper bound the paper acknowledges when
    discussing classical overheads.
    """

    def __init__(self, ledger: PairCountLedger, account_messages: bool = False):
        super().__init__(ledger)
        self.account_messages = account_messages

    def recipient_count(self, observer: NodeId, node_a: NodeId, node_b: NodeId) -> Optional[int]:
        return self.ledger.count(node_a, node_b)

    def refresh(self, round_index: int, rng: np.random.Generator) -> None:
        if not self.account_messages:
            return
        nodes = self.ledger.nodes
        for node in nodes:
            entries = len(self.ledger.partners(node))
            self.messages_sent += len(nodes) - 1
            self.entries_sent += entries * (len(nodes) - 1)


class GossipKnowledge(KnowledgeModel):
    """BitTorrent-style rotating partial knowledge (paper, §6).

    Every round each node refreshes its cached view of ``fanout`` peers
    (chosen uniformly at random, a stand-in for the choke/unchoke rotation),
    receiving their full count vectors.  Cached views persist until
    overwritten, so a node's belief about a peer can be stale.

    ``recipient_count`` answers from the cache; pairs about which the
    observer has no cached information return ``None`` and the balancer
    skips those candidates for the round.
    """

    def __init__(self, ledger: PairCountLedger, fanout: int = 3):
        super().__init__(ledger)
        if fanout <= 0:
            raise ValueError(f"fanout must be positive, got {fanout}")
        self.fanout = fanout
        # observer -> peer -> (peer's count vector as last seen)
        self._cache: Dict[NodeId, Dict[NodeId, Dict[NodeId, int]]] = {}

    def recipient_count(self, observer: NodeId, node_a: NodeId, node_b: NodeId) -> Optional[int]:
        views = self._cache.get(observer, {})
        if node_a in views:
            return views[node_a].get(node_b, 0)
        if node_b in views:
            return views[node_b].get(node_a, 0)
        return None

    def refresh(self, round_index: int, rng: np.random.Generator) -> None:
        nodes = self.ledger.nodes
        if len(nodes) <= 1:
            return
        for observer in nodes:
            others = [node for node in nodes if node != observer]
            sample_size = min(self.fanout, len(others))
            chosen = rng.choice(len(others), size=sample_size, replace=False)
            views = self._cache.setdefault(observer, {})
            for index in chosen:
                peer = others[int(index)]
                snapshot = self.ledger.snapshot_for(peer)
                views[peer] = snapshot
                self.messages_sent += 1
                self.entries_sent += len(snapshot)

    def known_peers(self, observer: NodeId) -> List[NodeId]:
        """Peers about which ``observer`` currently holds a cached view."""
        return list(self._cache.get(observer, {}))
