"""The max-min distributed balancing algorithm (paper, Section 4).

Every node ``x`` repeatedly looks at its current entanglement partners and
asks: is there a pair of partners ``(y, y')`` such that performing the swap
``y' <- x -> y`` is *preferable*?  The paper's condition is

``C_y(y') + 1  <=  min( C_x(y) - D_{x,y} ,  C_x(y') - D_{x,y'} )``

i.e. the swap is allowed only when the recipient pair, even after gaining a
pair, would still be no better off than either donor pair is after paying
its distillation cost.  Among preferable candidates the node performs the
one with minimal ``C_y(y')`` (other tie-break policies live in
:mod:`repro.core.maxmin.policy`).

Count accounting for one executed swap (consistent with equations (3)/(4)):

* ``C_x(y)``  decreases by ``D_{x,y}``  (the raw pairs distilled and swapped),
* ``C_x(y')`` decreases by ``D_{x,y'}``,
* ``C_y(y')`` increases by 1 (the produced pair),

and the swap counts as **one** swap operation toward the overhead metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.core.lp.extensions import PairOverheads
from repro.core.maxmin.knowledge import GlobalKnowledge, KnowledgeModel
from repro.core.maxmin.ledger import PairCountLedger
from repro.core.maxmin.policy import BalancingPolicy, MinRecipientCountPolicy, SwapCandidate
from repro.network.topology import EdgeKey, edge_key

NodeId = Hashable


@dataclass(frozen=True)
class SwapRecord:
    """One executed swap, for traces and the overhead metric."""

    repeater: NodeId
    left: NodeId
    right: NodeId
    round_index: int

    @property
    def produced_pair(self) -> EdgeKey:
        return edge_key(self.left, self.right)


class MaxMinBalancer:
    """Executes the balancing protocol over a :class:`PairCountLedger`.

    Parameters
    ----------
    ledger:
        The authoritative pair-count table.
    overheads:
        Per-pair distillation overheads ``D`` (a bare float is accepted and
        treated as a uniform overhead).  Non-integer values are rounded up
        when consuming counts, since counts are integers.
    policy:
        Candidate-selection policy; defaults to the paper's minimal
        recipient count rule.
    knowledge:
        What each node believes about remote counts; defaults to the
        paper's global knowledge.
    swaps_per_node_per_round:
        The "identical rate" at which every node performs the swapping
        process (the paper reports the results are insensitive to it).
    rng:
        Random stream for policies that need randomness.
    keep_records:
        Whether to retain a :class:`SwapRecord` per executed swap (required
        by some analyses; counters are always maintained).
    """

    def __init__(
        self,
        ledger: PairCountLedger,
        overheads: Union[PairOverheads, float] = 1.0,
        policy: Optional[BalancingPolicy] = None,
        knowledge: Optional[KnowledgeModel] = None,
        swaps_per_node_per_round: int = 1,
        rng: Optional[np.random.Generator] = None,
        keep_records: bool = True,
    ):
        if swaps_per_node_per_round <= 0:
            raise ValueError(
                f"swaps_per_node_per_round must be positive, got {swaps_per_node_per_round}"
            )
        self.ledger = ledger
        if isinstance(overheads, (int, float)):
            overheads = PairOverheads.uniform(distillation=float(overheads))
        self.overheads = overheads
        self.policy = policy if policy is not None else MinRecipientCountPolicy()
        self.knowledge = knowledge if knowledge is not None else GlobalKnowledge(ledger)
        self.swaps_per_node_per_round = int(swaps_per_node_per_round)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.keep_records = keep_records
        self.swaps_performed = 0
        self.swaps_by_node: Dict[NodeId, int] = {}
        self.records: List[SwapRecord] = []
        self._cost_cache: Dict[EdgeKey, int] = {}

    # ------------------------------------------------------------------ #
    # Overhead helpers
    # ------------------------------------------------------------------ #
    def distillation_cost(self, node_a: NodeId, node_b: NodeId) -> int:
        """Integer count cost of using one ``(node_a, node_b)`` pair."""
        key = edge_key(node_a, node_b)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = int(math.ceil(self.overheads.distillation_for(node_a, node_b)))
            self._cost_cache[key] = cost
        return cost

    def can_consume(self, node_a: NodeId, node_b: NodeId) -> bool:
        """Whether a consumption of pair ``(node_a, node_b)`` can be served right now."""
        return self.ledger.count(node_a, node_b) >= self.distillation_cost(node_a, node_b)

    def consume(self, node_a: NodeId, node_b: NodeId) -> int:
        """Serve one consumption: remove ``D`` raw pairs; returns pairs removed."""
        cost = self.distillation_cost(node_a, node_b)
        self.ledger.remove(node_a, node_b, cost)
        return cost

    def can_consume_sessions(self, sessions) -> bool:
        """Whether every Bell-pair session in ``sessions`` is affordable now.

        ``sessions`` is a list of canonical node pairs (e.g. from
        :func:`repro.protocols.fusion.group_sessions`); a group consumption
        is servable only when *all* of its sessions hold enough pairs.  A
        repeated pair must be affordable that many times over.  The
        single-session case is exactly :meth:`can_consume`.
        """
        needed: Dict[EdgeKey, int] = {}
        for node_a, node_b in sessions:
            key = edge_key(node_a, node_b)
            needed[key] = needed.get(key, 0) + self.distillation_cost(node_a, node_b)
        return all(
            self.ledger.count(key[0], key[1]) >= amount for key, amount in needed.items()
        )

    def consume_sessions(self, sessions) -> int:
        """Serve a group consumption: remove ``D`` pairs per session.

        Returns total pairs removed.  Callers must have checked
        :meth:`can_consume_sessions`; a shortfall raises mid-way like
        :meth:`consume` would, leaving earlier sessions consumed.
        """
        removed = 0
        for node_a, node_b in sessions:
            removed += self.consume(node_a, node_b)
        return removed

    # ------------------------------------------------------------------ #
    # Candidate enumeration (the paper's preferable condition)
    # ------------------------------------------------------------------ #
    def is_preferable(self, repeater: NodeId, left: NodeId, right: NodeId) -> bool:
        """Evaluate the paper's condition for ``left <- repeater -> right``."""
        candidate = self._evaluate_candidate(repeater, left, right)
        return candidate is not None

    def _evaluate_candidate(
        self, repeater: NodeId, left: NodeId, right: NodeId
    ) -> Optional[SwapCandidate]:
        if left == right or repeater in (left, right):
            return None
        left_count = self.ledger.count(repeater, left)
        right_count = self.ledger.count(repeater, right)
        cost_left = self.distillation_cost(repeater, left)
        cost_right = self.distillation_cost(repeater, right)
        if left_count < cost_left or right_count < cost_right:
            return None
        recipient = self.knowledge.recipient_count(repeater, left, right)
        if recipient is None:
            return None
        if recipient + 1 > min(left_count - cost_left, right_count - cost_right):
            return None
        return SwapCandidate(
            repeater=repeater,
            left=left,
            right=right,
            recipient_count=recipient,
            left_count=left_count,
            right_count=right_count,
        )

    def preferable_candidates(self, repeater: NodeId) -> List[SwapCandidate]:
        """All preferable swaps ``repeater`` could perform right now."""
        partner_counts = self.ledger.partners(repeater)
        partners = sorted(partner_counts, key=repr)
        # Pre-compute each partner's headroom (count minus distillation cost);
        # only partners with positive headroom can donate to a swap at all.
        headroom: Dict[NodeId, int] = {}
        for partner in partners:
            slack = partner_counts[partner] - self.distillation_cost(repeater, partner)
            if slack >= 1:
                headroom[partner] = slack
        eligible = [partner for partner in partners if partner in headroom]
        candidates: List[SwapCandidate] = []
        recipient_count = self.knowledge.recipient_count
        for index, left in enumerate(eligible):
            left_slack = headroom[left]
            for right in eligible[index + 1 :]:
                limit = min(left_slack, headroom[right])
                recipient = recipient_count(repeater, left, right)
                if recipient is None or recipient + 1 > limit:
                    continue
                candidates.append(
                    SwapCandidate(
                        repeater=repeater,
                        left=left,
                        right=right,
                        recipient_count=recipient,
                        left_count=partner_counts[left],
                        right_count=partner_counts[right],
                    )
                )
        return candidates

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def perform_swap(self, candidate: SwapCandidate, round_index: int = 0) -> SwapRecord:
        """Execute ``candidate``: update the ledger and the swap counters."""
        self.ledger.remove(candidate.repeater, candidate.left, self.distillation_cost(candidate.repeater, candidate.left))
        self.ledger.remove(candidate.repeater, candidate.right, self.distillation_cost(candidate.repeater, candidate.right))
        self.ledger.add(candidate.left, candidate.right, 1)
        self.swaps_performed += 1
        self.swaps_by_node[candidate.repeater] = self.swaps_by_node.get(candidate.repeater, 0) + 1
        record = SwapRecord(
            repeater=candidate.repeater,
            left=candidate.left,
            right=candidate.right,
            round_index=round_index,
        )
        if self.keep_records:
            self.records.append(record)
        return record

    def run_node(self, repeater: NodeId, round_index: int = 0) -> List[SwapRecord]:
        """Give ``repeater`` its turn: up to ``swaps_per_node_per_round`` preferable swaps."""
        performed: List[SwapRecord] = []
        for _ in range(self.swaps_per_node_per_round):
            candidates = self.preferable_candidates(repeater)
            choice = self.policy.choose(candidates, self.rng)
            if choice is None:
                break
            performed.append(self.perform_swap(choice, round_index))
        return performed

    def run_round(
        self,
        round_index: int = 0,
        node_order: Optional[Sequence[NodeId]] = None,
        refresh_knowledge: bool = True,
    ) -> List[SwapRecord]:
        """Run one full balancing round over every node.

        Nodes act sequentially within the round (the paper's algorithm is
        asynchronous; sequential execution with a rotating order is the
        standard discrete realisation).  ``node_order`` defaults to the
        ledger's node order rotated by the round index so no node is
        permanently advantaged.
        """
        if refresh_knowledge:
            self.knowledge.refresh(round_index, self.rng)
        nodes = list(node_order) if node_order is not None else self._rotated_nodes(round_index)
        performed: List[SwapRecord] = []
        for node in nodes:
            performed.extend(self.run_node(node, round_index))
        return performed

    def _rotated_nodes(self, round_index: int) -> List[NodeId]:
        nodes = self.ledger.nodes
        if not nodes:
            return []
        shift = round_index % len(nodes)
        return nodes[shift:] + nodes[:shift]

    # ------------------------------------------------------------------ #
    # Convergence check (used by tests and the fairness analysis)
    # ------------------------------------------------------------------ #
    def has_preferable_swap(self) -> bool:
        """Whether any node still has a preferable swap candidate."""
        return any(self.preferable_candidates(node) for node in self.ledger.nodes)

    def balance_to_convergence(self, max_rounds: int = 10_000) -> int:
        """With generation and consumption frozen, swap until no candidate remains.

        Returns the number of rounds used.  The paper argues the resulting
        allocation is max-min fair; the property-based tests check that no
        count can be increased without decreasing an already-smaller one.
        """
        for round_index in range(max_rounds):
            performed = self.run_round(round_index)
            if not performed:
                return round_index
        raise RuntimeError(f"balancing did not converge within {max_rounds} rounds")
