"""Max-min distributed balancing (paper, Section 4)."""

from repro.core.maxmin.balancer import MaxMinBalancer, SwapRecord
from repro.core.maxmin.knowledge import GlobalKnowledge, GossipKnowledge, KnowledgeModel
from repro.core.maxmin.ledger import PairCountLedger
from repro.core.maxmin.policy import (
    BalancingPolicy,
    DistanceWeightedPolicy,
    MinRecipientCountPolicy,
    RandomPreferablePolicy,
    SwapCandidate,
)

__all__ = [
    "BalancingPolicy",
    "DistanceWeightedPolicy",
    "GlobalKnowledge",
    "GossipKnowledge",
    "KnowledgeModel",
    "MaxMinBalancer",
    "MinRecipientCountPolicy",
    "PairCountLedger",
    "RandomPreferablePolicy",
    "SwapCandidate",
    "SwapRecord",
]
