"""Max-min distributed balancing (paper, Section 4).

The heart of the path-oblivious protocol: every node repeatedly performs
the *preferable* swap that most helps its worst-off entanglement partner.

* :mod:`repro.core.maxmin.ledger` -- the symmetric pair-count table
  ``C_x(y)`` the rule operates on,
* :mod:`repro.core.maxmin.knowledge` -- what each node believes about
  remote counts (global vs gossip dissemination, Section 6),
* :mod:`repro.core.maxmin.policy` -- tie-breaking rules among preferable
  candidates (min-recipient, random, distance-weighted),
* :mod:`repro.core.maxmin.balancer` -- the round-based algorithm itself,
* :mod:`repro.core.maxmin.incremental` -- the dirty-set incremental engine
  (same fixed points, O(affected) work per mutation; use
  :func:`make_balancer` to pick an engine by name).
"""

from repro.core.maxmin.balancer import MaxMinBalancer, SwapRecord
from repro.core.maxmin.incremental import (
    BALANCER_ENGINES,
    IncrementalMaxMinBalancer,
    make_balancer,
)
from repro.core.maxmin.knowledge import GlobalKnowledge, GossipKnowledge, KnowledgeModel
from repro.core.maxmin.ledger import PairCountLedger
from repro.core.maxmin.policy import (
    BalancingPolicy,
    DistanceWeightedPolicy,
    MinRecipientCountPolicy,
    RandomPreferablePolicy,
    SwapCandidate,
)

__all__ = [
    "BALANCER_ENGINES",
    "BalancingPolicy",
    "DistanceWeightedPolicy",
    "GlobalKnowledge",
    "GossipKnowledge",
    "IncrementalMaxMinBalancer",
    "KnowledgeModel",
    "MaxMinBalancer",
    "MinRecipientCountPolicy",
    "PairCountLedger",
    "RandomPreferablePolicy",
    "SwapCandidate",
    "SwapRecord",
    "make_balancer",
]
