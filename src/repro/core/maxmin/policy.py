"""Swap-candidate selection policies.

Section 4 of the paper specifies one tie-breaking rule: among *preferable*
swap candidates, perform the one whose recipient pair currently has the
smallest count.  Section 6 sketches refinements (e.g. discouraging a
repeater far from both endpoints from swapping for them).  Each rule is a
:class:`BalancingPolicy`, so the ablation experiments can swap them freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.network.topology import EdgeKey, Topology, edge_key

NodeId = Hashable


@dataclass(frozen=True)
class SwapCandidate:
    """A preferable swap ``left <- repeater -> right`` under consideration.

    Attributes
    ----------
    repeater:
        The node that would perform the swap (``x`` in the paper's notation).
    left, right:
        The two entanglement partners whose pairs would be consumed
        (``y`` and ``y'``).
    recipient_count:
        The believed current count ``C_left(right)`` of the pair the swap
        would create.
    left_count, right_count:
        The repeater's own counts ``C_x(left)`` and ``C_x(right)``.
    """

    repeater: NodeId
    left: NodeId
    right: NodeId
    recipient_count: int
    left_count: int
    right_count: int

    @property
    def produced_pair(self) -> EdgeKey:
        """The pair the swap would create."""
        return edge_key(self.left, self.right)

    def sort_key(self) -> Tuple:
        """Deterministic total order used for reproducible tie-breaking."""
        return (self.recipient_count, repr(self.produced_pair), repr(self.repeater))


class BalancingPolicy(abc.ABC):
    """Chooses which preferable candidate (if any) a node executes."""

    @abc.abstractmethod
    def choose(
        self, candidates: List[SwapCandidate], rng: np.random.Generator
    ) -> Optional[SwapCandidate]:
        """Pick one candidate from a non-empty list (or ``None`` to skip the turn)."""

    def name(self) -> str:
        return type(self).__name__


class MinRecipientCountPolicy(BalancingPolicy):
    """The paper's rule: perform the preferable swap with minimal ``C_y(y')``.

    Ties are broken deterministically (by the produced pair's repr) so runs
    are reproducible; set ``randomize_ties=True`` to break ties uniformly at
    random instead.
    """

    def __init__(self, randomize_ties: bool = False):
        self.randomize_ties = randomize_ties

    def choose(
        self, candidates: List[SwapCandidate], rng: np.random.Generator
    ) -> Optional[SwapCandidate]:
        if not candidates:
            return None
        if not self.randomize_ties:
            return min(candidates, key=lambda candidate: candidate.sort_key())
        minimum = min(candidate.recipient_count for candidate in candidates)
        tied = [candidate for candidate in candidates if candidate.recipient_count == minimum]
        return tied[int(rng.integers(0, len(tied)))]


class RandomPreferablePolicy(BalancingPolicy):
    """Uniformly random choice among preferable candidates (ablation baseline)."""

    def choose(
        self, candidates: List[SwapCandidate], rng: np.random.Generator
    ) -> Optional[SwapCandidate]:
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]


class DistanceWeightedPolicy(BalancingPolicy):
    """Prefer swaps whose repeater lies on (or near) a shortest generation path.

    Implements the Section 6 refinement: a repeater far from both endpoints
    should be reluctant to swap for them.  The *detour* of a candidate is
    ``dist(left, repeater) + dist(repeater, right) - dist(left, right)``
    measured on the generation graph; candidates are ranked by
    ``(detour, recipient_count)`` and candidates whose detour exceeds
    ``max_detour`` are refused outright.
    """

    def __init__(self, topology: Topology, max_detour: Optional[int] = None):
        self.topology = topology
        self.max_detour = max_detour
        self._distances = topology.all_pairs_shortest_path_lengths()

    def _distance(self, node_a: NodeId, node_b: NodeId) -> int:
        if node_a == node_b:
            return 0
        return self._distances.get(edge_key(node_a, node_b), 10**9)

    def detour(self, candidate: SwapCandidate) -> int:
        """How far off the left-right shortest path the repeater sits."""
        return (
            self._distance(candidate.left, candidate.repeater)
            + self._distance(candidate.repeater, candidate.right)
            - self._distance(candidate.left, candidate.right)
        )

    def choose(
        self, candidates: List[SwapCandidate], rng: np.random.Generator
    ) -> Optional[SwapCandidate]:
        if not candidates:
            return None
        eligible = candidates
        if self.max_detour is not None:
            eligible = [c for c in candidates if self.detour(c) <= self.max_detour]
            if not eligible:
                return None
        return min(eligible, key=lambda c: (self.detour(c),) + c.sort_key())
