"""The global Bell-pair count ledger.

The balancing protocol of Section 4 operates on counts: each node ``x``
maintains ``C_x(y)``, the number of Bell pairs it currently shares with each
other node ``y``, and by symmetry ``C_x(y) = C_y(x)``.
:class:`PairCountLedger` is the authoritative, symmetric count table used by
the count-level simulations; the knowledge models in
:mod:`repro.core.maxmin.knowledge` decide how much of it each node can see.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.network.topology import EdgeKey, edge_key

NodeId = Hashable

#: Signature of a mutation listener: ``(node_a, node_b, old_count, new_count)``.
MutationListener = Callable[[NodeId, NodeId, int, int], None]


class PairCountLedger:
    """Symmetric table of Bell-pair counts ``C_x(y)``.

    Counts are non-negative integers; every mutation keeps the two
    directions consistent (``C_x(y) == C_y(x)`` always holds).

    Observers (e.g. the incremental balancing engine) can :meth:`subscribe`
    to be notified after every :meth:`add`/:meth:`remove`, which is what
    makes O(affected) candidate invalidation possible without the ledger
    knowing anything about balancing.
    """

    def __init__(self, nodes: Optional[Iterable[NodeId]] = None):
        self._counts: Dict[NodeId, Dict[NodeId, int]] = {}
        self._listeners: List[MutationListener] = []
        for node in nodes or []:
            self.ensure_node(node)

    # ------------------------------------------------------------------ #
    # Mutation listeners
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: MutationListener) -> None:
        """Register ``listener`` to be called after every count mutation."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: MutationListener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, node_a: NodeId, node_b: NodeId, old_count: int, new_count: int) -> None:
        for listener in self._listeners:
            listener(node_a, node_b, old_count, new_count)

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #
    def ensure_node(self, node: NodeId) -> None:
        """Register ``node`` (idempotent)."""
        self._counts.setdefault(node, {})

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._counts)

    # ------------------------------------------------------------------ #
    # Counts
    # ------------------------------------------------------------------ #
    def count(self, node_a: NodeId, node_b: NodeId) -> int:
        """The count ``C_a(b) = C_b(a)`` (zero for unknown nodes or pairs)."""
        if node_a == node_b:
            return 0
        return self._counts.get(node_a, {}).get(node_b, 0)

    def add(self, node_a: NodeId, node_b: NodeId, amount: int = 1) -> int:
        """Add ``amount`` pairs between the two nodes; returns the new count."""
        if node_a == node_b:
            raise ValueError(f"cannot add a pair between {node_a!r} and itself")
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self.ensure_node(node_a)
        self.ensure_node(node_b)
        old_count = self.count(node_a, node_b)
        new_count = old_count + int(amount)
        self._counts[node_a][node_b] = new_count
        self._counts[node_b][node_a] = new_count
        if self._listeners:
            self._notify(node_a, node_b, old_count, new_count)
        return new_count

    def remove(self, node_a: NodeId, node_b: NodeId, amount: int = 1) -> int:
        """Remove ``amount`` pairs; raises when fewer than ``amount`` exist."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        current = self.count(node_a, node_b)
        if current < amount:
            raise ValueError(
                f"cannot remove {amount} pairs between {node_a!r} and {node_b!r}; "
                f"only {current} present"
            )
        new_count = current - int(amount)
        if new_count == 0:
            self._counts[node_a].pop(node_b, None)
            self._counts[node_b].pop(node_a, None)
        else:
            self._counts[node_a][node_b] = new_count
            self._counts[node_b][node_a] = new_count
        if self._listeners:
            self._notify(node_a, node_b, current, new_count)
        return new_count

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def partners(self, node: NodeId) -> Dict[NodeId, int]:
        """Nodes with which ``node`` currently shares pairs, and the counts."""
        return {partner: count for partner, count in self._counts.get(node, {}).items() if count > 0}

    def partner_view(self, node: NodeId) -> Dict[NodeId, int]:
        """Live read-only view of :meth:`partners` (no copy — do not mutate).

        Zero-count entries are never stored, so the view always matches
        :meth:`partners`; hot paths (the incremental balancer) use it to
        avoid rebuilding a dict per lookup.
        """
        return self._counts.get(node, {})

    def entanglement_degree(self, node: NodeId) -> int:
        """Number of distinct partners ``node`` shares at least one pair with."""
        return len(self.partners(node))

    def nonzero_pairs(self) -> Dict[EdgeKey, int]:
        """Every pair with a positive count, keyed canonically."""
        result: Dict[EdgeKey, int] = {}
        for node, partners in self._counts.items():
            for partner, count in partners.items():
                if count > 0:
                    result[edge_key(node, partner)] = count
        return result

    def total_pairs(self) -> int:
        """Total number of Bell pairs currently in the network."""
        return sum(self.nonzero_pairs().values())

    def minimum_count(self) -> int:
        """Smallest positive count (0 when the ledger is empty)."""
        counts = list(self.nonzero_pairs().values())
        return min(counts) if counts else 0

    def maximum_count(self) -> int:
        """Largest count (0 when the ledger is empty)."""
        counts = list(self.nonzero_pairs().values())
        return max(counts) if counts else 0

    def snapshot_for(self, node: NodeId) -> Dict[NodeId, int]:
        """A copy of ``node``'s count vector (what a gossip message would carry)."""
        return dict(self.partners(node))

    def copy(self) -> "PairCountLedger":
        """A deep copy (used by dry-run planners)."""
        clone = PairCountLedger(self.nodes)
        for (node_a, node_b), count in self.nonzero_pairs().items():
            clone.add(node_a, node_b, count)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PairCountLedger(nodes={len(self._counts)}, pairs={len(self.nonzero_pairs())}, "
            f"total={self.total_pairs()})"
        )
