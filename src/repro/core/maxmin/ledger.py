"""The global Bell-pair count ledger.

The balancing protocol of Section 4 operates on counts: each node ``x``
maintains ``C_x(y)``, the number of Bell pairs it currently shares with each
other node ``y``, and by symmetry ``C_x(y) = C_y(x)``.
:class:`PairCountLedger` is the authoritative, symmetric count table used by
the count-level simulations; the knowledge models in
:mod:`repro.core.maxmin.knowledge` decide how much of it each node can see.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.network.topology import EdgeKey, GroupKey, edge_key, group_key

NodeId = Hashable

#: Signature of a mutation listener: ``(node_a, node_b, old_count, new_count)``.
MutationListener = Callable[[NodeId, NodeId, int, int], None]

#: Signature of a group-keyed mutation listener: ``(group, old_count, new_count)``.
#: Pair mutations arrive with the size-2 canonical group key; GHZ mutations
#: with the full k-party key.
GroupMutationListener = Callable[[GroupKey, int, int], None]


class PairCountLedger:
    """Symmetric table of Bell-pair counts ``C_x(y)``.

    Counts are non-negative integers; every mutation keeps the two
    directions consistent (``C_x(y) == C_y(x)`` always holds).

    Observers (e.g. the incremental balancing engine) can :meth:`subscribe`
    to be notified after every :meth:`add`/:meth:`remove`, which is what
    makes O(affected) candidate invalidation possible without the ledger
    knowing anything about balancing.

    Beyond pairs, the ledger also tracks *group* (GHZ) states: counts keyed
    by a canonical :data:`~repro.network.topology.GroupKey` of three or more
    members.  Size-2 groups are not stored separately -- the group API
    (:meth:`add_group`, :meth:`remove_group`, :meth:`group_count`) dispatches
    them straight to the pair table, so the pair-keyed API remains the
    authoritative view for Bell pairs and group-size-2 behavior is
    bit-identical to the pair path.
    """

    def __init__(self, nodes: Optional[Iterable[NodeId]] = None):
        self._counts: Dict[NodeId, Dict[NodeId, int]] = {}
        self._group_counts: Dict[GroupKey, int] = {}
        self._group_membership: Dict[NodeId, Set[GroupKey]] = {}
        self._listeners: List[MutationListener] = []
        self._group_listeners: List[GroupMutationListener] = []
        for node in nodes or []:
            self.ensure_node(node)

    # ------------------------------------------------------------------ #
    # Mutation listeners
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: MutationListener) -> None:
        """Register ``listener`` to be called after every count mutation."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: MutationListener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def subscribe_groups(self, listener: GroupMutationListener) -> None:
        """Register a group-keyed listener (sees pair and GHZ mutations alike)."""
        if listener not in self._group_listeners:
            self._group_listeners.append(listener)

    def unsubscribe_groups(self, listener: GroupMutationListener) -> None:
        """Remove a previously subscribed group listener (no-op if absent)."""
        if listener in self._group_listeners:
            self._group_listeners.remove(listener)

    def _notify(self, node_a: NodeId, node_b: NodeId, old_count: int, new_count: int) -> None:
        for listener in self._listeners:
            listener(node_a, node_b, old_count, new_count)
        if self._group_listeners:
            key = edge_key(node_a, node_b)
            for group_listener in self._group_listeners:
                group_listener(key, old_count, new_count)

    def _notify_group(self, group: GroupKey, old_count: int, new_count: int) -> None:
        for group_listener in self._group_listeners:
            group_listener(group, old_count, new_count)

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #
    def ensure_node(self, node: NodeId) -> None:
        """Register ``node`` (idempotent)."""
        self._counts.setdefault(node, {})

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._counts)

    # ------------------------------------------------------------------ #
    # Counts
    # ------------------------------------------------------------------ #
    def count(self, node_a: NodeId, node_b: NodeId) -> int:
        """The count ``C_a(b) = C_b(a)`` (zero for unknown nodes or pairs)."""
        if node_a == node_b:
            return 0
        return self._counts.get(node_a, {}).get(node_b, 0)

    def add(self, node_a: NodeId, node_b: NodeId, amount: int = 1) -> int:
        """Add ``amount`` pairs between the two nodes; returns the new count."""
        if node_a == node_b:
            raise ValueError(f"cannot add a pair between {node_a!r} and itself")
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self.ensure_node(node_a)
        self.ensure_node(node_b)
        old_count = self.count(node_a, node_b)
        new_count = old_count + int(amount)
        self._counts[node_a][node_b] = new_count
        self._counts[node_b][node_a] = new_count
        if self._listeners or self._group_listeners:
            self._notify(node_a, node_b, old_count, new_count)
        return new_count

    def remove(self, node_a: NodeId, node_b: NodeId, amount: int = 1) -> int:
        """Remove ``amount`` pairs; raises when fewer than ``amount`` exist."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        current = self.count(node_a, node_b)
        if current < amount:
            raise ValueError(
                f"cannot remove {amount} pairs between {node_a!r} and {node_b!r}; "
                f"only {current} present"
            )
        new_count = current - int(amount)
        if new_count == 0:
            self._counts[node_a].pop(node_b, None)
            self._counts[node_b].pop(node_a, None)
        else:
            self._counts[node_a][node_b] = new_count
            self._counts[node_b][node_a] = new_count
        if self._listeners or self._group_listeners:
            self._notify(node_a, node_b, current, new_count)
        return new_count

    # ------------------------------------------------------------------ #
    # Group (GHZ) counts -- size-2 groups dispatch to the pair table
    # ------------------------------------------------------------------ #
    def group_count(self, *nodes: NodeId) -> int:
        """The count of k-party GHZ states over ``nodes`` (pairs for k=2)."""
        key = group_key(*nodes)
        if len(key) == 2:
            return self.count(key[0], key[1])
        return self._group_counts.get(key, 0)

    def add_group(self, nodes: Iterable[NodeId], amount: int = 1) -> int:
        """Add ``amount`` GHZ states over ``nodes``; returns the new count.

        A size-2 group is exactly a Bell pair: the mutation lands in the
        pair table and notifies pair listeners, keeping the two APIs one
        authoritative store.
        """
        key = group_key(*nodes)
        if len(key) == 2:
            return self.add(key[0], key[1], amount)
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        for node in key:
            self.ensure_node(node)
        old_count = self._group_counts.get(key, 0)
        new_count = old_count + int(amount)
        self._group_counts[key] = new_count
        for node in key:
            self._group_membership.setdefault(node, set()).add(key)
        if self._group_listeners:
            self._notify_group(key, old_count, new_count)
        return new_count

    def remove_group(self, nodes: Iterable[NodeId], amount: int = 1) -> int:
        """Remove ``amount`` GHZ states; raises when fewer than ``amount`` exist."""
        key = group_key(*nodes)
        if len(key) == 2:
            return self.remove(key[0], key[1], amount)
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        current = self._group_counts.get(key, 0)
        if current < amount:
            raise ValueError(
                f"cannot remove {amount} group states over {key!r}; only {current} present"
            )
        new_count = current - int(amount)
        if new_count == 0:
            self._group_counts.pop(key, None)
            for node in key:
                members = self._group_membership.get(node)
                if members is not None:
                    members.discard(key)
                    if not members:
                        self._group_membership.pop(node, None)
        else:
            self._group_counts[key] = new_count
        if self._group_listeners:
            self._notify_group(key, current, new_count)
        return new_count

    def nonzero_groups(self) -> Dict[GroupKey, int]:
        """Every group with a positive count: pairs (as size-2 keys) plus GHZ."""
        result: Dict[GroupKey, int] = dict(self.nonzero_pairs())
        result.update(self._group_counts)
        return result

    def groups_involving(self, node: NodeId) -> Dict[GroupKey, int]:
        """GHZ groups (size >= 3) that include ``node``, with counts."""
        return {
            key: self._group_counts[key]
            for key in self._group_membership.get(node, ())
            if key in self._group_counts
        }

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def partners(self, node: NodeId) -> Dict[NodeId, int]:
        """Nodes with which ``node`` currently shares pairs, and the counts."""
        return {partner: count for partner, count in self._counts.get(node, {}).items() if count > 0}

    def partner_view(self, node: NodeId) -> Dict[NodeId, int]:
        """Live read-only view of :meth:`partners` (no copy — do not mutate).

        Zero-count entries are never stored, so the view always matches
        :meth:`partners`; hot paths (the incremental balancer) use it to
        avoid rebuilding a dict per lookup.
        """
        return self._counts.get(node, {})

    def entanglement_degree(self, node: NodeId) -> int:
        """Number of distinct partners ``node`` shares at least one pair with."""
        return len(self.partners(node))

    def nonzero_pairs(self) -> Dict[EdgeKey, int]:
        """Every pair with a positive count, keyed canonically."""
        result: Dict[EdgeKey, int] = {}
        for node, partners in self._counts.items():
            for partner, count in partners.items():
                if count > 0:
                    result[edge_key(node, partner)] = count
        return result

    def total_pairs(self) -> int:
        """Total number of Bell pairs currently in the network."""
        return sum(self.nonzero_pairs().values())

    def minimum_count(self) -> int:
        """Smallest positive count (0 when the ledger is empty)."""
        counts = list(self.nonzero_pairs().values())
        return min(counts) if counts else 0

    def maximum_count(self) -> int:
        """Largest count (0 when the ledger is empty)."""
        counts = list(self.nonzero_pairs().values())
        return max(counts) if counts else 0

    def snapshot_for(self, node: NodeId) -> Dict[NodeId, int]:
        """A copy of ``node``'s count vector (what a gossip message would carry)."""
        return dict(self.partners(node))

    def copy(self) -> "PairCountLedger":
        """A deep copy (used by dry-run planners)."""
        clone = PairCountLedger(self.nodes)
        for (node_a, node_b), count in self.nonzero_pairs().items():
            clone.add(node_a, node_b, count)
        for group, count in self._group_counts.items():
            clone.add_group(group, count)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PairCountLedger(nodes={len(self._counts)}, pairs={len(self.nonzero_pairs())}, "
            f"total={self.total_pairs()})"
        )
