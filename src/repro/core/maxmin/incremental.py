"""Incremental max-min balancing engine.

:class:`~repro.core.maxmin.balancer.MaxMinBalancer` re-enumerates a node's
entire O(partners²) candidate set on every turn and rescans every node every
round, which is fine at paper scale (tens of nodes) and hopeless at the
hundreds-to-thousands of nodes the large-topology experiments need.  This
module keeps the exact same algorithm — same preferable condition, same
policy choice, same round structure, bit-identical ledger fixed points for
any deterministic policy — but makes each step cost O(affected) instead of
O(everything):

* **Dirty-set invalidation** — the engine subscribes to
  :meth:`PairCountLedger.add`/:meth:`remove <PairCountLedger.remove>`.  A
  mutation of edge ``(a, b)`` can only change candidates in three places:
  candidates of repeater ``a`` involving partner ``b``, candidates of
  repeater ``b`` involving partner ``a``, and candidates ``(x, a, b)`` whose
  *produced* pair is ``(a, b)`` (for repeaters ``x`` sharing pairs with both
  ends).  Exactly those entries are marked dirty; everything else stays
  cached.
* **Lazy re-evaluation** — dirty entries are re-evaluated only when their
  repeater is actually consulted (its turn in a round, or a convergence
  check).
* **Active-set convergence** — instead of a full per-round rescan, rounds
  visit only nodes that hold a cached candidate or dirty entries; all other
  nodes are skipped in O(1).  A node skipped this way would have enumerated
  an empty candidate list under the naive engine, so the executed swap
  sequence — and therefore the ledger fixed point — is unchanged.
* **Vectorized initial sweep** — under global knowledge the initial
  candidate population is computed with NumPy over the whole count matrix
  rather than per-pair Python loops.

The optional ``self_check`` mode re-runs the naive enumeration beside every
incremental answer and raises on any divergence; the property tests use it
to assert equivalence candidate-by-candidate, not just at the fixed point.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.core.maxmin.balancer import MaxMinBalancer, SwapRecord
from repro.core.maxmin.knowledge import GlobalKnowledge
from repro.core.maxmin.ledger import PairCountLedger
from repro.core.maxmin.policy import SwapCandidate
from repro.perf.kernels import candidate_block

NodeId = Hashable
PairKey = Tuple[NodeId, NodeId]

#: The balancing engines the experiment layer can request by name.
BALANCER_ENGINES: Tuple[str, ...] = ("naive", "incremental")


def make_balancer(engine: str, ledger: PairCountLedger, **kwargs) -> MaxMinBalancer:
    """Build the balancing engine named ``engine`` over ``ledger``.

    ``"naive"`` is the original full-rescan :class:`MaxMinBalancer`;
    ``"incremental"`` is :class:`IncrementalMaxMinBalancer`.  Both accept the
    same keyword arguments and reach identical fixed points under any
    deterministic policy.
    """
    if engine == "naive":
        return MaxMinBalancer(ledger, **kwargs)
    if engine == "incremental":
        return IncrementalMaxMinBalancer(ledger, **kwargs)
    raise ValueError(f"unknown balancer engine {engine!r}; choose from {BALANCER_ENGINES}")


class IncrementalMaxMinBalancer(MaxMinBalancer):
    """Drop-in :class:`MaxMinBalancer` with incremental candidate maintenance.

    Additional parameters
    ---------------------
    self_check:
        When true, every incremental candidate list is verified against the
        naive O(partners²) enumeration and a :class:`RuntimeError` is raised
        on the first divergence.  Meant for tests; it removes the speedup.
    """

    def __init__(self, ledger: PairCountLedger, *args, self_check: bool = False, **kwargs):
        super().__init__(ledger, *args, **kwargs)
        self.self_check = bool(self_check)
        # repeater -> canonical (left, right) -> currently-valid candidate
        self._candidates: Dict[NodeId, Dict[PairKey, SwapCandidate]] = {}
        # repeater -> partners whose pairings must all be re-evaluated
        self._dirty_partners: Dict[NodeId, Set[NodeId]] = {}
        # repeater -> specific produced-pairs to re-evaluate
        self._dirty_pairs: Dict[NodeId, Set[PairKey]] = {}
        # repeaters whose whole candidate set must be rebuilt
        self._stale: Set[NodeId] = set()
        # repeaters currently holding at least one valid cached candidate
        self._active: Set[NodeId] = set()
        # repeater -> partners with donation headroom >= 1 (exact, kept
        # up to date on every mutation so pairing loops never touch the
        # small-count partners that dominate a balanced ledger)
        self._eligible: Dict[NodeId, Set[NodeId]] = {}
        # Uniform overheads collapse every distillation cost to one int.
        self._uniform_cost: Optional[int] = (
            int(np.ceil(self.overheads.default_distillation))
            if not self.overheads.distillation
            else None
        )
        self.ledger.subscribe_groups(self._on_group_mutation)
        self._rebuild_all()

    # The knowledge model is settable after construction (the experiment
    # runner swaps in gossip knowledge that way); reassignment must drop
    # every cached candidate because believed counts may change wholesale.
    @property
    def knowledge(self):
        return self._knowledge

    @knowledge.setter
    def knowledge(self, model) -> None:
        self._knowledge = model
        # Every fast path (ledger-direct recipient reads, the vectorized
        # sweep, skipping invalidation on refresh) requires *exactly*
        # GlobalKnowledge: a subclass may override recipient_count or
        # refresh, so it gets the conservative treatment throughout.
        self._fast_global = type(model) is GlobalKnowledge
        if getattr(self, "_candidates", None) is not None:
            self.invalidate_all()

    def detach(self) -> None:
        """Stop observing the ledger (the engine must not be used afterwards)."""
        self.ledger.unsubscribe_groups(self._on_group_mutation)

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def _on_group_mutation(self, group, old: int, new: int) -> None:
        # The dirty-set machinery is keyed by the mutated group.  Bell-pair
        # mutations (size-2 groups) feed the pair invalidation below; GHZ
        # mutations (size >= 3) cannot change any swap candidate — swaps
        # produce and consume Bell pairs only — so they invalidate nothing.
        if len(group) == 2:
            self._on_mutation(group[0], group[1], old, new)

    def _on_mutation(self, node_a: NodeId, node_b: NodeId, old: int, new: int) -> None:
        cost = (
            self._uniform_cost
            if self._uniform_cost is not None
            else self.distillation_cost(node_a, node_b)
        )
        if new - cost >= 1:
            self._eligible.setdefault(node_a, set()).add(node_b)
            self._eligible.setdefault(node_b, set()).add(node_a)
        else:
            eligible = self._eligible.get(node_a)
            if eligible is not None:
                eligible.discard(node_b)
            eligible = self._eligible.get(node_b)
            if eligible is not None:
                eligible.discard(node_a)
        self._dirty_partners.setdefault(node_a, set()).add(node_b)
        self._dirty_partners.setdefault(node_b, set()).add(node_a)
        # The produced-pair count C_a(b) changed: candidates (x, a, b) must be
        # re-checked for every x sharing pairs with both ends.  Any other x
        # cannot hold (and can never have held) a valid (x, a, b) candidate.
        partners_a = self.ledger.partner_view(node_a)
        partners_b = self.ledger.partner_view(node_b)
        if len(partners_b) < len(partners_a):
            partners_a, partners_b = partners_b, partners_a
        key = self._pair_key(node_a, node_b)
        for x in partners_a:
            if x in partners_b:
                self._dirty_pairs.setdefault(x, set()).add(key)

    def invalidate_all(self) -> None:
        """Discard every cached candidate (e.g. after an external knowledge change)."""
        self._stale.update(self.ledger.nodes)
        self._stale.update(self._candidates)
        self._dirty_partners.clear()
        self._dirty_pairs.clear()

    @staticmethod
    def _pair_key(node_a: NodeId, node_b: NodeId) -> PairKey:
        if repr(node_a) <= repr(node_b):
            return (node_a, node_b)
        return (node_b, node_a)

    # ------------------------------------------------------------------ #
    # Flushing dirty state
    # ------------------------------------------------------------------ #
    def _headroom(self, repeater: NodeId, partner: NodeId, count: int) -> int:
        if self._uniform_cost is not None:
            return count - self._uniform_cost
        return count - self.distillation_cost(repeater, partner)

    def _recipient(self, repeater: NodeId, left: NodeId, right: NodeId) -> Optional[int]:
        if self._fast_global:
            return self.ledger.partner_view(left).get(right, 0)
        return self.knowledge.recipient_count(repeater, left, right)

    def _flush_node(self, repeater: NodeId) -> None:
        if repeater in self._stale:
            self._stale.discard(repeater)
            self._dirty_partners.pop(repeater, None)
            self._dirty_pairs.pop(repeater, None)
            self._rebuild_node(repeater)
            return
        dirty_partners = self._dirty_partners.pop(repeater, None)
        dirty_pairs = self._dirty_pairs.pop(repeater, None)
        if not dirty_partners and not dirty_pairs:
            return
        cache = self._candidates.setdefault(repeater, {})
        view = self.ledger.partner_view(repeater)
        eligible = self._eligible.get(repeater) or ()
        if dirty_partners:
            if cache:
                for key in [
                    k for k in cache if k[0] in dirty_partners or k[1] in dirty_partners
                ]:
                    del cache[key]
            for partner in dirty_partners:
                if partner not in eligible:
                    continue  # cannot donate: no pairing involving it is valid
                slack = self._headroom(repeater, partner, view[partner])
                partner_repr = repr(partner)
                for other in eligible:
                    if other is partner or other == partner:
                        continue
                    if other in dirty_partners and repr(other) < partner_repr:
                        continue  # both dirty: evaluate the pairing once
                    other_slack = self._headroom(repeater, other, view[other])
                    limit = slack if slack < other_slack else other_slack
                    key = self._pair_key(partner, other)
                    recipient = self._recipient(repeater, key[0], key[1])
                    if recipient is None or recipient + 1 > limit:
                        continue
                    cache[key] = SwapCandidate(
                        repeater=repeater,
                        left=key[0],
                        right=key[1],
                        recipient_count=recipient,
                        left_count=view[key[0]],
                        right_count=view[key[1]],
                    )
        if dirty_pairs:
            for key in dirty_pairs:
                if dirty_partners and (key[0] in dirty_partners or key[1] in dirty_partners):
                    continue  # already re-evaluated above
                left, right = key
                candidate = None
                if left in eligible and right in eligible:
                    left_slack = self._headroom(repeater, left, view[left])
                    right_slack = self._headroom(repeater, right, view[right])
                    limit = left_slack if left_slack < right_slack else right_slack
                    recipient = self._recipient(repeater, left, right)
                    if recipient is not None and recipient + 1 <= limit:
                        candidate = SwapCandidate(
                            repeater=repeater,
                            left=left,
                            right=right,
                            recipient_count=recipient,
                            left_count=view[left],
                            right_count=view[right],
                        )
                if candidate is not None:
                    cache[key] = candidate
                else:
                    cache.pop(key, None)
        if cache:
            self._active.add(repeater)
        else:
            self._active.discard(repeater)

    def _flush_all(self) -> None:
        # A full invalidation (knowledge reassignment, invalidate_all) marks
        # every node stale; re-evaluating the whole dirty set one naive
        # O(partners²) node at a time is then strictly worse than one
        # vectorized global sweep, which produces the identical candidate
        # sets through the balancer-candidates kernel.
        if (
            self._fast_global
            and self._stale
            and self._stale.issuperset(self.ledger.nodes)
        ):
            self._rebuild_all()
            return
        pending = set(self._stale)
        pending.update(self._dirty_partners)
        pending.update(self._dirty_pairs)
        for repeater in pending:
            self._flush_node(repeater)

    def _has_pending_work(self) -> bool:
        return bool(
            self._active or self._stale or self._dirty_partners or self._dirty_pairs
        )

    def _node_may_act(self, repeater: NodeId) -> bool:
        return (
            repeater in self._active
            or repeater in self._stale
            or repeater in self._dirty_partners
            or repeater in self._dirty_pairs
        )

    # ------------------------------------------------------------------ #
    # (Re)building candidate sets
    # ------------------------------------------------------------------ #
    def _rebuild_node(self, repeater: NodeId) -> None:
        cache = {
            (candidate.left, candidate.right): candidate
            for candidate in MaxMinBalancer.preferable_candidates(self, repeater)
        }
        if cache:
            self._candidates[repeater] = cache
            self._active.add(repeater)
        else:
            self._candidates.pop(repeater, None)
            self._active.discard(repeater)

    def _rebuild_all(self) -> None:
        self._candidates.clear()
        self._active.clear()
        self._dirty_partners.clear()
        self._dirty_pairs.clear()
        self._stale.clear()
        self._eligible.clear()
        for (node_a, node_b), count in self.ledger.nonzero_pairs().items():
            cost = (
                self._uniform_cost
                if self._uniform_cost is not None
                else self.distillation_cost(node_a, node_b)
            )
            if count - cost >= 1:
                self._eligible.setdefault(node_a, set()).add(node_b)
                self._eligible.setdefault(node_b, set()).add(node_a)
        if self._fast_global:
            self._vectorized_sweep()
        else:
            for node in self.ledger.nodes:
                self._rebuild_node(node)

    def _vectorized_sweep(self) -> None:
        """Batch evaluation of every candidate under global knowledge.

        Builds the dense count and distillation-cost matrices once, then
        evaluates each repeater's full candidate block through the
        ``balancer-candidates`` kernel (see :mod:`repro.perf.kernels`)
        instead of per-pair Python loops.
        """
        nonzero = self.ledger.nonzero_pairs()
        if not nonzero:
            return
        nodes = self.ledger.nodes
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        counts = np.zeros((n, n), dtype=np.int64)
        costs = np.zeros((n, n), dtype=np.int64)
        for (a, b), count in nonzero.items():
            ia, ib = index[a], index[b]
            counts[ia, ib] = counts[ib, ia] = count
            cost = self.distillation_cost(a, b)
            costs[ia, ib] = costs[ib, ia] = cost
        for repeater in nodes:
            partners = sorted(self.ledger.partner_view(repeater), key=repr)
            if len(partners) < 2:
                continue
            i = index[repeater]
            partner_idx = np.array([index[p] for p in partners], dtype=np.intp)
            headroom = counts[i, partner_idx] - costs[i, partner_idx]
            eligible = headroom >= 1
            if np.count_nonzero(eligible) < 2:
                continue
            elig_idx = partner_idx[eligible]
            elig_head = headroom[eligible]
            elig_nodes = [p for p, ok in zip(partners, eligible) if ok]
            recipient = counts[np.ix_(elig_idx, elig_idx)]
            rows, cols = candidate_block(elig_head, recipient)
            if rows.size == 0:
                continue
            cache: Dict[PairKey, SwapCandidate] = {}
            own_counts = counts[i, elig_idx]
            for r, c in zip(rows.tolist(), cols.tolist()):
                left, right = elig_nodes[r], elig_nodes[c]
                cache[(left, right)] = SwapCandidate(
                    repeater=repeater,
                    left=left,
                    right=right,
                    recipient_count=int(recipient[r, c]),
                    left_count=int(own_counts[r]),
                    right_count=int(own_counts[c]),
                )
            self._candidates[repeater] = cache
            self._active.add(repeater)

    # ------------------------------------------------------------------ #
    # Overridden queries
    # ------------------------------------------------------------------ #
    def preferable_candidates(self, repeater: NodeId) -> List[SwapCandidate]:
        self._flush_node(repeater)
        cache = self._candidates.get(repeater)
        if not cache:
            result: List[SwapCandidate] = []
        else:
            result = [
                cache[key]
                for key in sorted(cache, key=lambda k: (repr(k[0]), repr(k[1])))
            ]
        if self.self_check:
            expected = MaxMinBalancer.preferable_candidates(self, repeater)
            if result != expected:
                raise RuntimeError(
                    f"incremental candidate set diverged for repeater {repeater!r}: "
                    f"incremental={result} naive={expected}"
                )
        return result

    def has_preferable_swap(self) -> bool:
        self._flush_all()
        return bool(self._active)

    def run_round(
        self,
        round_index: int = 0,
        node_order=None,
        refresh_knowledge: bool = True,
    ) -> List[SwapRecord]:
        if refresh_knowledge:
            self.knowledge.refresh(round_index, self.rng)
            if not self._fast_global:
                # Non-global knowledge can change any believed count on
                # refresh; the caches cannot survive it.
                self.invalidate_all()
        nodes = list(node_order) if node_order is not None else self._rotated_nodes(round_index)
        performed: List[SwapRecord] = []
        for node in nodes:
            if self._node_may_act(node):
                performed.extend(self.run_node(node, round_index))
        return performed

    def balance_to_convergence(self, max_rounds: int = 10_000) -> int:
        for round_index in range(max_rounds):
            if self._fast_global and not self._has_pending_work():
                return round_index
            performed = self.run_round(round_index)
            if not performed:
                return round_index
        raise RuntimeError(f"balancing did not converge within {max_rounds} rounds")
