"""The paper's primary contribution.

Two halves, mirroring Sections 3 and 4 of the paper:

* :mod:`repro.core.lp` -- the path-oblivious *linear flow program*: given
  generation capabilities ``g(x, y)``, consumption demand ``c(x, y)`` and
  per-pair overheads (distillation ``D``, loss ``L``, QEC ``R``), solve for
  the steady-state swap rates ``sigma_i(x, y)`` under one of several
  optimization objectives.
* :mod:`repro.core.maxmin` -- the distributed *max-min balancing* protocol:
  a node performs the swap ``y' <- x -> y`` only when doing so does not push
  any pair count below the count it is helping, preferring the most
  starved recipient pair.

:mod:`repro.core.hybrid` implements the Section 6 extension that falls back
to minimal planning (shortest path over the *current entanglement graph*)
when a consumption request cannot be served immediately.
"""

from repro.core.lp import (
    LinearProgram,
    LPSolution,
    Objective,
    PairOverheads,
    PathObliviousFlowProgram,
    SteadyStateRates,
    solve_flow_program,
)
from repro.core.maxmin import (
    BalancingPolicy,
    DistanceWeightedPolicy,
    GossipKnowledge,
    GlobalKnowledge,
    KnowledgeModel,
    MaxMinBalancer,
    MinRecipientCountPolicy,
    PairCountLedger,
    RandomPreferablePolicy,
    SwapCandidate,
    SwapRecord,
)
from repro.core.hybrid import HybridPlanner, entanglement_graph

__all__ = [
    "BalancingPolicy",
    "DistanceWeightedPolicy",
    "GlobalKnowledge",
    "GossipKnowledge",
    "HybridPlanner",
    "KnowledgeModel",
    "LPSolution",
    "LinearProgram",
    "MaxMinBalancer",
    "MinRecipientCountPolicy",
    "Objective",
    "PairCountLedger",
    "PairOverheads",
    "PathObliviousFlowProgram",
    "RandomPreferablePolicy",
    "SteadyStateRates",
    "SwapCandidate",
    "SwapRecord",
    "entanglement_graph",
    "solve_flow_program",
]
