"""Round-based (synchronous) simulation engine.

Section 5 of the paper evaluates the balancing protocol with count-level
dynamics: Bell pairs are generated, nodes perform balancing swaps "at an
identical rate", and an ordered sequence of consumption requests is served.
A synchronous round abstraction captures this exactly and is far cheaper
than the entity-level discrete-event engine, which matters for the
figure-level parameter sweeps.

Each round executes three phases in a fixed order:

1. ``GENERATION``   -- generation links add new Bell pairs,
2. ``BALANCING``    -- every node gets the chance to perform swaps,
3. ``CONSUMPTION``  -- the head-of-line consumption requests are served.

Protocol code attaches :class:`RoundHook` callbacks to phases; the simulator
owns the loop, the clock and the termination conditions.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.spans import telemetry_enabled
from repro.sim.clock import SimulationClock
from repro.sim.metrics import MetricRegistry
from repro.sim.tracing import TraceRecorder


class RoundPhase(enum.Enum):
    """The phases executed, in order, within every simulation round."""

    GENERATION = "generation"
    BALANCING = "balancing"
    CONSUMPTION = "consumption"
    BOOKKEEPING = "bookkeeping"


#: A phase callback.  It receives the current round index and may return
#: ``True`` to request that the simulation stop at the end of this round.
RoundHook = Callable[[int], Optional[bool]]


@dataclass
class RoundResult:
    """Summary of one completed round (used by tests and tracing)."""

    round_index: int
    stop_requested: bool


class RoundBasedSimulator:
    """Synchronous simulator executing phased rounds until a stop condition.

    Parameters
    ----------
    max_rounds:
        Hard upper bound on the number of rounds (guards against runs whose
        stop condition can never be met, e.g. an infeasible demand).
    metrics, trace:
        Optional shared metric registry and trace recorder.
    """

    def __init__(
        self,
        max_rounds: int = 1_000_000,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.max_rounds = int(max_rounds)
        self.clock = SimulationClock()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace
        self._hooks: Dict[RoundPhase, List[RoundHook]] = {phase: [] for phase in RoundPhase}
        self._stop_predicates: List[Callable[[int], bool]] = []
        self.completed_rounds = 0
        #: Cumulative wall-clock seconds spent per phase, filled only while
        #: telemetry is enabled (the flag is cached once per simulator so
        #: the per-phase cost while disabled is a single branch).
        self.phase_seconds: Dict[str, float] = {phase.value: 0.0 for phase in RoundPhase}
        self._timed = telemetry_enabled()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_hook(self, phase: RoundPhase, hook: RoundHook) -> None:
        """Register ``hook`` to run during ``phase`` of every round."""
        self._hooks[phase].append(hook)

    def add_stop_condition(self, predicate: Callable[[int], bool]) -> None:
        """Register a predicate evaluated after every round; ``True`` stops the run."""
        self._stop_predicates.append(predicate)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, rounds: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        rounds:
            Optional explicit number of rounds to run.  When omitted, the
            simulation runs until a stop condition (or hook) requests a stop
            or ``max_rounds`` is reached.

        Returns
        -------
        int
            The number of rounds completed during this call.
        """
        limit = self.max_rounds if rounds is None else min(rounds, self.max_rounds)
        executed = 0
        while executed < limit:
            result = self.step()
            executed += 1
            if result.stop_requested:
                break
            if any(predicate(result.round_index) for predicate in self._stop_predicates):
                break
        return executed

    def step(self) -> RoundResult:
        """Execute exactly one round and return its summary."""
        round_index = self.completed_rounds
        stop_requested = False
        for phase in (
            RoundPhase.GENERATION,
            RoundPhase.BALANCING,
            RoundPhase.CONSUMPTION,
            RoundPhase.BOOKKEEPING,
        ):
            if self._timed:
                phase_start = time.perf_counter()
                for hook in self._hooks[phase]:
                    outcome = hook(round_index)
                    if outcome:
                        stop_requested = True
                self.phase_seconds[phase.value] += time.perf_counter() - phase_start
            else:
                for hook in self._hooks[phase]:
                    outcome = hook(round_index)
                    if outcome:
                        stop_requested = True
            if self.trace is not None:
                self.trace.record(self.clock.now, f"phase.{phase.value}", {"round": round_index})
        self.completed_rounds += 1
        self.clock.advance_by(1.0)
        return RoundResult(round_index=round_index, stop_requested=stop_requested)
