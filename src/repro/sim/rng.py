"""Deterministic random-number streams.

Every stochastic component of the simulator (topology wiring, consumer-pair
selection, request sequencing, swap tie-breaking, generation jitter, ...)
draws from its *own named stream* derived from a single experiment seed.
This guarantees that

* the same experiment seed reproduces the same run bit-for-bit, and
* changing one component's consumption of randomness (e.g. adding a new
  tie-break draw in the balancer) does not perturb the random choices made
  by unrelated components.

The derivation uses SHA-256 over ``(root_seed, stream_name)`` so stream
seeds are stable across Python versions and processes (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Optional

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit seed for ``name`` from ``root_seed``.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    name:
        The stream name, e.g. ``"topology"`` or ``"demand"``.

    Returns
    -------
    int
        A non-negative integer strictly below ``2**63`` suitable for seeding
        :class:`numpy.random.Generator` or :class:`random.Random`.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


class RandomStreams:
    """A registry of independent, named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> streams = RandomStreams(root_seed=7)
    >>> a = streams.get("demand").integers(0, 100)
    >>> b = RandomStreams(root_seed=7).get("demand").integers(0, 100)
    >>> int(a) == int(b)
    True
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The experiment-level seed all streams derive from."""
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if necessary) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` rooted at a seed derived from ``name``.

        Useful for giving a repeated sub-experiment (e.g. trial ``i`` of a
        sweep) its own fully independent family of streams.
        """
        return RandomStreams(derive_seed(self._root_seed, name))

    def spawn_trial_streams(self, n_trials: int, prefix: str = "trial") -> Iterator["RandomStreams"]:
        """Yield ``n_trials`` independent stream registries, one per trial."""
        for index in range(n_trials):
            yield self.fork(f"{prefix}-{index}")

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one stream (or every stream when ``name`` is ``None``) to its initial state."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self._root_seed}, streams={sorted(self._streams)})"
