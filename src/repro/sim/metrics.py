"""Metric collection primitives.

Protocols and experiment harnesses record their observable behaviour through
these collectors rather than ad-hoc dictionaries, so every experiment report
in ``repro.analysis.reporting`` can be generated uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def increment(self, amount: float = 1.0) -> float:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot be incremented by {amount}")
        self._value += amount
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A value that can move up and down (e.g. pairs currently in memory)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0.0
        self._max_seen = -math.inf
        self._min_seen = math.inf

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_seen(self) -> float:
        return self._max_seen

    @property
    def min_seen(self) -> float:
        return self._min_seen

    def set(self, value: float) -> None:
        self._value = float(value)
        self._max_seen = max(self._max_seen, self._value)
        self._min_seen = min(self._min_seen, self._value)

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def reset(self) -> None:
        self._value = 0.0
        self._max_seen = -math.inf
        self._min_seen = math.inf


class Histogram:
    """A simple streaming histogram retaining all observations.

    The simulations here are small enough (at most millions of observations)
    that retaining raw samples is fine and keeps quantile computation exact.
    """

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        return tuple(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return sum(self._samples) / len(self._samples)

    def total(self) -> float:
        return sum(self._samples)

    def minimum(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    def maximum(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) using linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    #: Quantiles every report quotes (p50/p95/p99); see :meth:`percentiles`.
    REPORT_QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)

    def percentiles(self, quantiles: Optional[Iterable[float]] = None) -> Dict[str, float]:
        """The named report quantiles, e.g. ``{"p50": ..., "p95": ..., "p99": ...}``.

        ``quantiles`` overrides the default :data:`REPORT_QUANTILES`; keys
        are rendered as ``p<percent>`` with trailing zeros trimmed
        (``0.999`` becomes ``p99.9``).
        """
        chosen = self.REPORT_QUANTILES if quantiles is None else tuple(quantiles)
        labelled: Dict[str, float] = {}
        for q in chosen:
            label = f"{q * 100:g}"
            labelled[f"p{label}"] = self.quantile(q)
        return labelled

    def reset(self) -> None:
        self._samples.clear()


@dataclass
class TimeSeries:
    """A sequence of ``(time, value)`` observations."""

    name: str
    description: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"time series {self.name!r} observations must be non-decreasing in time"
            )
        self.points.append((float(time), float(value)))

    def times(self) -> List[float]:
        return [time for time, _ in self.points]

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)


class MetricRegistry:
    """A namespace of counters, gauges, histograms and time series."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name, description)
        return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, description)
        return self._gauges[name]

    def histogram(self, name: str, description: str = "") -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, description)
        return self._histograms[name]

    def time_series(self, name: str, description: str = "") -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name, description)
        return self._series[name]

    def counters(self) -> Dict[str, float]:
        return {name: counter.value for name, counter in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        return {name: gauge.value for name, gauge in self._gauges.items()}

    def iter_counters(self) -> List[Counter]:
        """The registered counters, sorted by name (for expositions)."""
        return [self._counters[name] for name in sorted(self._counters)]

    def iter_gauges(self) -> List[Gauge]:
        """The registered gauges, sorted by name (for expositions)."""
        return [self._gauges[name] for name in sorted(self._gauges)]

    def iter_histograms(self) -> List[Histogram]:
        """The registered histograms, sorted by name (for expositions)."""
        return [self._histograms[name] for name in sorted(self._histograms)]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all scalar metrics into one dictionary (for reports)."""
        snapshot: Dict[str, float] = {}
        snapshot.update({f"counter.{name}": value for name, value in self.counters().items()})
        snapshot.update({f"gauge.{name}": value for name, value in self.gauges().items()})
        for name, histogram in self._histograms.items():
            snapshot[f"histogram.{name}.count"] = float(histogram.count)
            snapshot[f"histogram.{name}.mean"] = histogram.mean()
            for label, value in histogram.percentiles().items():
                snapshot[f"histogram.{name}.{label}"] = value
        return snapshot

    def reset(self) -> None:
        for collection in (self._counters, self._gauges, self._histograms):
            for metric in collection.values():
                metric.reset()
        for series in self._series.values():
            series.points.clear()
