"""Structured trace recording.

A trace is an append-only list of ``(time, kind, payload)`` records.  The
analysis layer uses traces to reconstruct what a protocol did (e.g. which
swaps were performed, in which order, at which nodes) without the protocol
having to anticipate every question an experiment might ask.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One record in a trace."""

    time: float
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise the record as one JSON line."""
        return json.dumps({"time": self.time, "kind": self.kind, **self.payload}, sort_keys=True)


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation run.

    Parameters
    ----------
    enabled:
        Recording can be switched off wholesale for large parameter sweeps
        where only the aggregate metrics matter.
    capacity:
        Optional cap on the number of retained records; the oldest records
        are dropped once the cap is exceeded (the drop count is tracked).
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, kind: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Append one record (no-op when disabled)."""
        if not self.enabled:
            return
        self._events.append(TraceEvent(time=time, kind=kind, payload=dict(payload or {})))
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Return all records, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Return records matching an arbitrary predicate."""
        return [event for event in self._events if predicate(event)]

    def count(self, kind: Optional[str] = None) -> int:
        """How many records (optionally of one kind) have been retained."""
        if kind is None:
            return len(self._events)
        return sum(1 for event in self._events if event.kind == kind)

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        histogram: Dict[str, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def to_jsonl(self) -> str:
        """Serialise the full trace as JSON lines."""
        return "\n".join(event.to_json() for event in self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
