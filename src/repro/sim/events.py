"""Event taxonomy for the discrete-event engine.

The detailed (entity-level) simulations schedule events of the types below.
Keeping the taxonomy in one place makes traces and metrics comparable across
protocols: a planned-path run and a path-oblivious run emit the same event
vocabulary and can be diffed directly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class EventType(enum.Enum):
    """The kinds of events the quantum-network simulations schedule."""

    #: A generation link attempts to produce a new elementary Bell pair.
    GENERATION = "generation"
    #: A repeater performs an entanglement swap.
    SWAP = "swap"
    #: A node-pair consumes a Bell pair (e.g. for teleportation).
    CONSUMPTION = "consumption"
    #: A distillation (purification) round combines two pairs into one.
    DISTILLATION = "distillation"
    #: A stored Bell pair decoheres and is discarded.
    DECOHERENCE = "decoherence"
    #: A classical control message is delivered.
    CLASSICAL_MESSAGE = "classical_message"
    #: A new end-to-end entanglement request arrives.
    REQUEST_ARRIVAL = "request_arrival"
    #: A request gives up waiting (used by timeout / cutoff policies).
    REQUEST_TIMEOUT = "request_timeout"
    #: Periodic protocol timer (e.g. a balancing round trigger).
    TIMER = "timer"
    #: A scenario perturbation fires (link failure, node churn, demand drift, ...).
    SCENARIO = "scenario"
    #: End of simulation marker.
    END_OF_SIMULATION = "end_of_simulation"


_EVENT_SEQUENCE = itertools.count()


@dataclass(order=False)
class SimEvent:
    """A schedulable simulation event.

    Events compare by ``(time, priority, sequence)`` so that ties at the same
    timestamp are broken first by explicit priority and then by insertion
    order, which keeps runs deterministic.
    """

    time: float
    event_type: EventType
    payload: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    sequence: int = field(default_factory=lambda: next(_EVENT_SEQUENCE))
    cancelled: bool = False
    #: The queue currently holding this event (set by the queue itself so it
    #: can track cancellations in O(1) and compact lazily).
    owner: Optional[Any] = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it on dispatch."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner.note_cancelled(self)

    def sort_key(self) -> tuple:
        """The total order used by the event queue."""
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "SimEvent") -> bool:
        return self.sort_key() < other.sort_key()

    def describe(self) -> str:
        """A short human-readable description for traces and logs."""
        return f"t={self.time:.6g} {self.event_type.value} {self.payload}"


def make_timer(time: float, name: str, interval: Optional[float] = None) -> SimEvent:
    """Create a :data:`EventType.TIMER` event.

    Parameters
    ----------
    time:
        Absolute simulated time at which the timer fires.
    name:
        Identifier the handler uses to recognise the timer.
    interval:
        Optional repeat interval the handler may use to reschedule itself.
    """
    payload: Dict[str, Any] = {"name": name}
    if interval is not None:
        payload["interval"] = interval
    return SimEvent(time=time, event_type=EventType.TIMER, payload=payload)
