"""Discrete-event simulation engine.

The engine is deliberately small and dependency-free: a binary-heap event
queue, a handler registry keyed by :class:`~repro.sim.events.EventType`, a
shared :class:`~repro.sim.clock.SimulationClock` and optional metric/trace
sinks.  Protocol implementations (``repro.protocols``) register handlers and
schedule events; the engine owns time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.perf.kernels import event_drain_order
from repro.sim.clock import SimulationClock
from repro.sim.events import EventType, SimEvent
from repro.sim.metrics import MetricRegistry
from repro.sim.tracing import TraceRecorder

# Backwards-compatible aliases used throughout the code base.
Event = SimEvent
EventHandler = Callable[[SimEvent], None]


class StopSimulation(Exception):
    """Raised by a handler to stop the simulation immediately."""


class EventQueue:
    """A binary-heap priority queue of :class:`SimEvent` objects.

    Cancelled events are counted in O(1) (the queue registers itself as the
    event's ``owner``) and physically removed by a lazy compaction pass once
    they exceed half the heap, so cancel-heavy workloads (timeout/cutoff
    policies cancelling most of what they schedule) keep the heap bounded by
    ~2x the live event count instead of growing without limit.
    """

    #: Compaction never triggers below this heap size (rebuilds would cost
    #: more than they save).
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: List[SimEvent] = []
        self._cancelled = 0

    def push(self, event: SimEvent) -> SimEvent:
        """Insert ``event`` and return it (handy for later cancellation)."""
        event.owner = self
        if event.cancelled:
            self._cancelled += 1
        heapq.heappush(self._heap, event)
        return event

    def note_cancelled(self, event: SimEvent) -> None:
        """Called by :meth:`SimEvent.cancel` while the event sits in this queue."""
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if len(self._heap) >= self.COMPACT_MIN_SIZE and 2 * self._cancelled >= len(self._heap):
            # The event-drain kernel orders the surviving events outright
            # (by (time, priority, sequence), exactly the heap's drain
            # order); a fully sorted list is a valid binary heap, so no
            # heapify pass is needed afterwards.
            heap = self._heap
            n = len(heap)
            times = np.fromiter((event.time for event in heap), dtype=np.float64, count=n)
            priorities = np.fromiter((event.priority for event in heap), dtype=np.int64, count=n)
            sequences = np.fromiter((event.sequence for event in heap), dtype=np.int64, count=n)
            cancelled = np.fromiter((event.cancelled for event in heap), dtype=bool, count=n)
            self._heap = [heap[i] for i in event_drain_order(times, priorities, sequences, cancelled)]
            self._cancelled = 0

    def pop(self) -> SimEvent:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        IndexError
            If the queue holds no non-cancelled events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event.owner = None
                return event
            self._cancelled -= 1
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class SimulationEngine:
    """Event loop driving the detailed (entity-level) simulations.

    Parameters
    ----------
    metrics:
        Optional shared metric registry; one is created if omitted.
    trace:
        Optional trace recorder.  When provided, every dispatched event is
        appended to the trace, which the analysis layer can replay.
    max_events:
        Safety valve: the run aborts with :class:`RuntimeError` if more than
        this many events are dispatched (guards against runaway reschedule
        loops in protocol code).
    """

    def __init__(
        self,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        max_events: int = 10_000_000,
    ) -> None:
        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace
        self.max_events = int(max_events)
        self._handlers: Dict[EventType, List[EventHandler]] = {}
        self._dispatched = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Handler registration and scheduling
    # ------------------------------------------------------------------ #
    def register(self, event_type: EventType, handler: EventHandler) -> None:
        """Register ``handler`` to be invoked for every event of ``event_type``."""
        self._handlers.setdefault(event_type, []).append(handler)

    def unregister(self, event_type: EventType, handler: EventHandler) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._handlers.get(event_type, [])
        if handler in handlers:
            handlers.remove(handler)

    def schedule(
        self,
        delay: float,
        event_type: EventType,
        payload: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> SimEvent:
        """Schedule an event ``delay`` time units in the future."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = SimEvent(
            time=self.clock.now + delay,
            event_type=event_type,
            payload=dict(payload or {}),
            priority=priority,
        )
        return self.queue.push(event)

    def schedule_at(
        self,
        time: float,
        event_type: EventType,
        payload: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> SimEvent:
        """Schedule an event at an absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at {time}, which is before the current time {self.clock.now}"
            )
        event = SimEvent(
            time=time, event_type=event_type, payload=dict(payload or {}), priority=priority
        )
        return self.queue.push(event)

    def stop(self) -> None:
        """Request that the run loop exit after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def dispatched_events(self) -> int:
        """How many events have been dispatched so far."""
        return self._dispatched

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or a handler stops the run.

        A :meth:`stop` requested *before* the run starts is honoured: the
        loop exits immediately without dispatching anything.  Each run
        consumes the stop request on exit, so a subsequent ``run()`` call
        resumes normally.

        Returns
        -------
        float
            The simulated time at which the run ended.
        """
        try:
            while not self._stopped:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.clock.advance_to(until)
                    break
                event = self.queue.pop()
                self.clock.advance_to(event.time)
                self._dispatch(event)
                if event.event_type is EventType.END_OF_SIMULATION:
                    break
        finally:
            self._stopped = False
        return self.clock.now

    def _dispatch(self, event: SimEvent) -> None:
        self._dispatched += 1
        if self._dispatched > self.max_events:
            raise RuntimeError(
                f"simulation exceeded max_events={self.max_events}; "
                "likely a handler is rescheduling itself unconditionally"
            )
        if self.trace is not None:
            self.trace.record(event.time, event.event_type.value, dict(event.payload))
        # A handler raising StopSimulation ends the run *after* this event:
        # the remaining registered handlers still see it, so co-registered
        # observers (metrics, traces, cleanup) are never silently skipped.
        for handler in list(self._handlers.get(event.event_type, [])):
            try:
                handler(event)
            except StopSimulation:
                self._stopped = True
