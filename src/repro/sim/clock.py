"""Simulation clock.

A tiny shared abstraction so that both the round-based and the discrete-event
engines expose the current simulated time the same way to the metric and
tracing subsystems.
"""

from __future__ import annotations


class SimulationClock:
    """A monotonically non-decreasing simulated clock.

    The clock refuses to move backwards; discrete-event engines advance it to
    the timestamp of each dispatched event, while round-based simulators
    advance it by one unit per round.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is earlier than the current time.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by a non-negative ``delta``."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` (defaults to zero)."""
        if start < 0:
            raise ValueError(f"clock cannot reset to negative time {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now})"
