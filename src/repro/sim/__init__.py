"""Simulation substrate for the path-oblivious swapping reproduction.

This package provides two complementary engines:

* :mod:`repro.sim.engine` -- a classic discrete-event engine with a binary
  heap event queue, used by the detailed protocol simulations where Bell
  pairs are individual entities with creation times, decoherence deadlines
  and classical-message latencies.
* :mod:`repro.sim.rounds` -- a synchronous round-based engine that matches
  the count-level dynamics described in Section 5 of the paper (generation,
  balancing swaps and ordered consumption proceed in lock-step rounds).

Shared infrastructure lives alongside them: deterministic named RNG streams
(:mod:`repro.sim.rng`), simulation clocks (:mod:`repro.sim.clock`), metric
collectors (:mod:`repro.sim.metrics`) and structured trace recording
(:mod:`repro.sim.tracing`).
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import Event, EventQueue, SimulationEngine, StopSimulation
from repro.sim.events import EventType, SimEvent
from repro.sim.metrics import Counter, Gauge, Histogram, MetricRegistry, TimeSeries
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.rounds import RoundBasedSimulator, RoundHook, RoundPhase
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "EventType",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "RandomStreams",
    "RoundBasedSimulator",
    "RoundHook",
    "RoundPhase",
    "SimEvent",
    "SimulationClock",
    "SimulationEngine",
    "StopSimulation",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
    "derive_seed",
]
