"""Unified telemetry: spans, the hub, exposition, and schemas.

The observability layer of the reproduction (see the "Observability"
section of ``docs/architecture.md``):

* :mod:`repro.obs.spans` -- the nestable ``span()`` context manager and the
  per-process buffers it fills, gated by ``REPRO_TELEMETRY``.
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` hub unifying metric
  registries, trace recorders and span buffers behind ``snapshot()`` /
  ``export_jsonl()`` / ``chrome_trace()``.
* :mod:`repro.obs.exposition` -- Prometheus-style text exposition of a
  metric registry (the serve daemon's ``metrics`` verb).
* :mod:`repro.obs.schemas` -- JSON schemas for the telemetry JSONL stream
  and the Chrome trace export, checked in at
  ``docs/schemas/telemetry.schema.json``.

Telemetry is strictly observation-only: enabling it never changes any
result byte (``tests/test_obs_determinism.py`` enforces this).
"""

from repro.obs.spans import (
    SPAN_BUFFER,
    SPAN_NAMES,
    TELEMETRY_ENV,
    SpanBuffer,
    SpanRecord,
    disable,
    emit,
    enable,
    span,
    telemetry_enabled,
)
from repro.obs.telemetry import (
    HUB_METRIC_NAMES,
    TELEMETRY,
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
)

__all__ = [
    "SPAN_BUFFER",
    "SPAN_NAMES",
    "TELEMETRY",
    "TELEMETRY_ENV",
    "TELEMETRY_SCHEMA_VERSION",
    "HUB_METRIC_NAMES",
    "SpanBuffer",
    "SpanRecord",
    "Telemetry",
    "disable",
    "emit",
    "enable",
    "span",
    "telemetry_enabled",
]
