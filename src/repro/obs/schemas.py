"""JSON schemas for the telemetry JSONL stream and the Chrome trace export.

One ``--telemetry FILE`` stream is newline-delimited JSON: a ``manifest``
record first, then ``span`` records, ``metric`` records, and at most one
``trace`` summary.  Each record kind has its own schema below (the subset
validator in :mod:`repro.experiments.schema` has no ``oneOf``, so
:func:`validate_record` dispatches on the ``type`` field in code); the
combined document checked in at ``docs/schemas/telemetry.schema.json`` is
:data:`TELEMETRY_SCHEMA` (a drift test keeps the two identical).

Usable as a CI filter over a whole stream::

    PYTHONPATH=src python -m repro.obs.schemas t.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable

from repro.experiments.schema import SchemaError, validate_payload
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION

#: Record kinds a telemetry stream may carry, in stream order.
RECORD_TYPES = ("manifest", "span", "metric", "trace")

MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "type",
        "schema_version",
        "created",
        "git_rev",
        "kernels_backend",
        "python",
        "platform",
    ],
    "properties": {
        "type": {"type": "string", "enum": ["manifest"]},
        "schema_version": {"type": "integer", "enum": [TELEMETRY_SCHEMA_VERSION]},
        "created": {"type": "number"},
        "experiment": {"type": ["string", "null"]},
        "git_rev": {"type": "string"},
        "kernels_backend": {"type": "string"},
        "python": {"type": "string"},
        "platform": {"type": "string"},
    },
}

SPAN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "type",
        "name",
        "start",
        "duration",
        "pid",
        "thread",
        "span_id",
        "depth",
        "attrs",
    ],
    "properties": {
        "type": {"type": "string", "enum": ["span"]},
        "name": {"type": "string"},
        "start": {"type": "number"},
        "duration": {"type": "number"},
        "pid": {"type": "integer"},
        "thread": {"type": "integer"},
        "span_id": {"type": "integer"},
        "parent_id": {"type": ["integer", "null"]},
        "depth": {"type": "integer"},
        "attrs": {"type": "object"},
    },
}

METRIC_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["type", "kind", "name", "value"],
    "properties": {
        "type": {"type": "string", "enum": ["metric"]},
        "kind": {"type": "string", "enum": ["counter", "gauge", "histogram"]},
        "name": {"type": "string"},
        "value": {"type": "number"},
        "count": {"type": "integer"},
    },
}

TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["type", "events", "dropped", "kinds"],
    "properties": {
        "type": {"type": "string", "enum": ["trace"]},
        "events": {"type": "integer"},
        "dropped": {"type": "integer"},
        "kinds": {"type": "object"},
    },
}

_RECORD_SCHEMAS = {
    "manifest": MANIFEST_SCHEMA,
    "span": SPAN_SCHEMA,
    "metric": METRIC_SCHEMA,
    "trace": TRACE_SCHEMA,
}

#: The document checked in at ``docs/schemas/telemetry.schema.json``.
TELEMETRY_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro telemetry stream",
    "description": (
        "Newline-delimited JSON written by `repro <experiment> --telemetry "
        "FILE`: one manifest record (run provenance), then span records "
        "(nestable wall-clock intervals), metric records (counter/gauge/"
        "histogram scalars) and an optional trace summary.  Each line "
        "validates against the definition matching its `type` field."
    ),
    "telemetry_schema_version": TELEMETRY_SCHEMA_VERSION,
    "definitions": {
        "manifest": MANIFEST_SCHEMA,
        "span": SPAN_SCHEMA,
        "metric": METRIC_SCHEMA,
        "trace": TRACE_SCHEMA,
    },
}

CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "dur", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X"]},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string"},
    },
}


def validate_record(record: Any) -> None:
    """Validate one telemetry JSONL record against its ``type``'s schema."""
    if not isinstance(record, dict):
        raise SchemaError(f"telemetry record must be an object, got {type(record).__name__}")
    kind = record.get("type")
    schema = _RECORD_SCHEMAS.get(kind)
    if schema is None:
        raise SchemaError(
            f"telemetry record 'type' is {kind!r}, expected one of {list(RECORD_TYPES)}"
        )
    validate_payload(record, schema=schema)


def validate_stream(records: Iterable[Any]) -> int:
    """Validate a whole stream; the first record must be the manifest.

    Returns the number of records validated.
    """
    count = 0
    for index, record in enumerate(records):
        validate_record(record)
        if index == 0 and record.get("type") != "manifest":
            raise SchemaError(
                f"telemetry stream must open with a manifest record, "
                f"got type {record.get('type')!r}"
            )
        count += 1
    if count == 0:
        raise SchemaError("telemetry stream is empty (no manifest record)")
    return count


def validate_chrome_trace(payload: Any) -> None:
    """Validate a Chrome trace-event export (the `repro obs chrome` output)."""
    validate_payload(payload, schema=CHROME_TRACE_SCHEMA)


def main(argv=None) -> int:
    """Validate a telemetry JSONL file (or ``-`` for stdin) line by line."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.schemas <telemetry.jsonl | ->", file=sys.stderr)
        return 2
    raw = sys.stdin.read() if argv[0] == "-" else open(argv[0], encoding="utf-8").read()
    records = []
    try:
        for lineno, line in enumerate(raw.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise SchemaError(f"line {lineno}: not a JSON record: {error}") from None
        count = validate_stream(records)
    except SchemaError as error:
        print(f"telemetry schema violation: {error}", file=sys.stderr)
        return 1
    print(f"ok: valid telemetry stream ({count} record(s))")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
