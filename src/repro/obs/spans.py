"""The span API: nestable wall-clock timing with near-zero disabled cost.

A *span* is one timed region of the trial / sweep / serve lifecycle::

    with span("trial.balance", rounds=120):
        ...

Spans nest (the context manager maintains a per-thread stack, so a child
records its parent's id and depth) and are process-safe: every process
appends to its own module-global :data:`SPAN_BUFFER`, and the sweep runner
ships worker buffers back to the parent alongside the trial outcomes, so a
multi-process sweep still yields one merged stream.

Telemetry is **observation-only** and off by default.  The master switch is
the ``REPRO_TELEMETRY`` environment variable (or :func:`enable` /
:func:`disable`, which also set the variable so ``spawn``-ed sweep workers
inherit the decision).  While disabled, :func:`span` returns a shared
no-op context manager -- no allocation, no clock read, no buffer append --
which is what keeps the disabled overhead unmeasurable
(``benchmarks/test_bench_obs.py`` holds that floor).

Nothing here ever feeds back into results: span data lives outside
:class:`~repro.experiments.config.ExperimentConfig`, outside the result
cache's content address, and outside every RNG stream, so results are
byte-identical with telemetry on or off (``tests/test_obs_determinism.py``
pins this).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Environment variable switching telemetry on ("1") and off (unset/"0").
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Default bound on buffered spans per process (oldest dropped, counted).
DEFAULT_SPAN_CAPACITY = 100_000

#: Every span name the instrumentation emits, in lifecycle order.  The docs
#: gate (tests/test_docs.py) requires each one to appear as a backticked
#: token in the documentation.
SPAN_NAMES: Tuple[str, ...] = (
    # experiment layer (repro.experiments.api)
    "experiment.run",
    "experiment.reduce",
    # sweep layer (repro.runtime.sweep)
    "sweep.run",
    "sweep.trial",
    # trial lifecycle (repro.experiments.runner)
    "trial.run",
    "trial.topology",
    "trial.workload",
    "trial.routing",
    "trial.rounds",
    # per-phase aggregates (repro.protocols.base, cumulative over rounds)
    "trial.generation",
    "trial.balance",
    "trial.consumption",
    "trial.bookkeeping",
    "trial.reduce",
    # serve job stages (repro.serve.worker)
    "serve.job.queued",
    "serve.job.running",
)

#: Anchor translating ``perf_counter`` readings to Unix epoch seconds.  One
#: snapshot per process keeps every span start monotonic *and* comparable
#: across the parent and its sweep workers.
_EPOCH = time.time() - time.perf_counter()


def _now_unix(perf: float) -> float:
    return _EPOCH + perf


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (what the buffer stores and the JSONL sink emits)."""

    name: str
    start: float  #: Unix epoch seconds.
    duration: float  #: Wall-clock seconds.
    pid: int
    thread: int
    span_id: int
    parent_id: Optional[int]
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """The JSONL representation (``type: span``)."""
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "thread": self.thread,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "attrs": self.attrs,
        }


class SpanBuffer:
    """A bounded, lock-protected list of finished spans for one process."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity < 1:
            raise ValueError(f"span buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()

    def append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.capacity:
                overflow = len(self._records) - self.capacity
                del self._records[:overflow]
                self.dropped += overflow

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Merge records shipped back from a worker process."""
        for record in records:
            self.append(record)

    def snapshot(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Return and remove every buffered span (drop count is kept)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: The process-global buffer every enabled span lands in.
SPAN_BUFFER = SpanBuffer()

_ids = itertools.count(1)
_stack = threading.local()

_enabled = os.environ.get(TELEMETRY_ENV, "").strip() not in ("", "0", "false", "False")


def telemetry_enabled() -> bool:
    """Whether spans are being recorded in this process."""
    return _enabled


def enable(on: bool = True) -> None:
    """Switch telemetry on (or off) for this process *and* its sweep workers.

    The decision is mirrored into :data:`TELEMETRY_ENV` because sweep
    workers are spawned fresh and re-read the environment on import.
    """
    global _enabled
    _enabled = bool(on)
    if _enabled:
        os.environ[TELEMETRY_ENV] = "1"
    else:
        os.environ.pop(TELEMETRY_ENV, None)


def disable() -> None:
    """Switch telemetry off (see :func:`enable`)."""
    enable(False)


def _current_stack() -> List[Tuple[int, int]]:
    stack = getattr(_stack, "frames", None)
    if stack is None:
        stack = _stack.frames = []
    return stack


class _NoopSpan:
    """The shared disabled span: entering and exiting does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """An enabled span: times the block and appends one :class:`SpanRecord`."""

    __slots__ = ("name", "attrs", "span_id", "_start_perf")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self._start_perf = 0.0

    def __enter__(self) -> "_Span":
        stack = _current_stack()
        depth = len(stack)
        stack.append((self.span_id, depth))
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        end_perf = time.perf_counter()
        stack = _current_stack()
        stack.pop()
        parent_id = stack[-1][0] if stack else None
        SPAN_BUFFER.append(
            SpanRecord(
                name=self.name,
                start=_now_unix(self._start_perf),
                duration=end_perf - self._start_perf,
                pid=os.getpid(),
                thread=threading.get_ident(),
                span_id=self.span_id,
                parent_id=parent_id,
                depth=len(stack),
                attrs=self.attrs,
            )
        )
        return False


def span(name: str, **attrs: Any):
    """A context manager timing the enclosed block as one span.

    While telemetry is disabled this returns a shared no-op object, so an
    instrumented hot path costs one truthiness check and one attribute
    lookup per call -- nothing allocates and no clock is read.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


def emit(name: str, start: float, duration: float, **attrs: Any) -> None:
    """Record an already-measured interval as a span.

    For intervals that cannot wrap a ``with`` block: the cross-thread
    ``serve.job.queued`` wait (measured between a push on one thread and a
    pop on another) and the per-phase aggregates the round loop accumulates
    (one synthetic span per phase per trial, laid back-to-back).  ``start``
    is in ``time.perf_counter()`` terms; the record stores epoch seconds.
    No-op while telemetry is disabled.
    """
    if not _enabled:
        return
    stack = _current_stack()
    parent_id = stack[-1][0] if stack else None
    SPAN_BUFFER.append(
        SpanRecord(
            name=name,
            start=_now_unix(start),
            duration=duration,
            pid=os.getpid(),
            thread=threading.get_ident(),
            span_id=next(_ids),
            parent_id=parent_id,
            depth=len(stack),
            attrs=attrs,
        )
    )
