"""The :class:`Telemetry` hub: one surface over spans, metrics and traces.

The repo's three observability primitives grew up separately --
:class:`~repro.sim.metrics.MetricRegistry` collectors,
:class:`~repro.sim.tracing.TraceRecorder` event logs, and the span buffers
of :mod:`repro.obs.spans`.  The hub unifies them behind ``snapshot()`` /
``export_jsonl()``: one JSONL stream of typed records (validated by
:mod:`repro.obs.schemas`, checked in at
``docs/schemas/telemetry.schema.json``) that opens with a **run manifest**
-- who measured, where, with which kernels backend -- followed by every
span, every scalar metric, and a trace summary carrying the recorder's
retained/dropped counts.

``chrome_trace()`` re-shapes the same spans into the Chrome trace-event
format, so ``chrome://tracing`` (or Perfetto) renders a sweep's timeline
with one worker process per track.  ``python -m repro obs render FILE`` /
``python -m repro obs chrome FILE`` are the CLI front ends.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.spans import SPAN_BUFFER, SpanBuffer, SpanRecord
from repro.sim.metrics import MetricRegistry
from repro.sim.tracing import TraceRecorder

#: Version stamp of the telemetry JSONL layout.
TELEMETRY_SCHEMA_VERSION = 1

#: Metric families the hub itself maintains (sweep provenance counters).
#: The docs gate requires each to be a backticked doc token, like the serve
#: families in :data:`repro.serve.daemon.SERVE_METRIC_NAMES`.
HUB_METRIC_NAMES = (
    "sweep.cells",
    "sweep.cached",
    "sweep.computed",
)


class Telemetry:
    """One export surface over a metric registry, a trace, and span buffers."""

    def __init__(
        self,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        spans: Optional[SpanBuffer] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace
        self.spans = spans if spans is not None else SPAN_BUFFER

    # -- assembly ------------------------------------------------------------

    def manifest(self, experiment: Optional[str] = None, **extra: Any) -> Dict[str, Any]:
        """The run manifest opening every export: provenance, not results."""
        from repro.perf.bench import git_revision
        from repro.perf.kernels import active_backend

        record: Dict[str, Any] = {
            "type": "manifest",
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "created": time.time(),
            "experiment": experiment,
            "git_rev": git_revision(),
            "kernels_backend": active_backend(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        record.update(extra)
        return record

    def _metric_records(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        for counter in self.metrics.iter_counters():
            records.append(
                {"type": "metric", "kind": "counter", "name": counter.name,
                 "value": counter.value}
            )
        for gauge in self.metrics.iter_gauges():
            records.append(
                {"type": "metric", "kind": "gauge", "name": gauge.name,
                 "value": gauge.value}
            )
        for histogram in self.metrics.iter_histograms():
            records.append(
                {"type": "metric", "kind": "histogram", "name": histogram.name,
                 "value": histogram.total(), "count": histogram.count}
            )
        return records

    def _trace_record(self) -> Optional[Dict[str, Any]]:
        if self.trace is None:
            return None
        return {
            "type": "trace",
            "events": len(self.trace),
            "dropped": self.trace.dropped,
            "kinds": self.trace.kinds(),
        }

    def records(self, experiment: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every JSONL record of one export, manifest first."""
        records: List[Dict[str, Any]] = [self.manifest(experiment=experiment)]
        records.extend(record.to_record() for record in self.spans.snapshot())
        records.extend(self._metric_records())
        trace = self._trace_record()
        if trace is not None:
            records.append(trace)
        return records

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view of everything the hub holds right now."""
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "spans": [record.to_record() for record in self.spans.snapshot()],
            "spans_dropped": self.spans.dropped,
            "metrics": self.metrics.snapshot(),
            "trace": self._trace_record(),
        }

    # -- sinks ---------------------------------------------------------------

    def export_jsonl(self, path, experiment: Optional[str] = None) -> Path:
        """Write the full record stream to ``path``, one JSON object per line."""
        target = Path(path)
        lines = [json.dumps(record, sort_keys=True) for record in self.records(experiment)]
        target.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return target

    def chrome_trace(self) -> Dict[str, Any]:
        """The buffered spans as a Chrome trace-event document."""
        return chrome_trace_from_spans(self.spans.snapshot())

    def reset(self) -> None:
        """Drop every buffered span and reset the hub's own metrics."""
        self.spans.clear()
        self.metrics.reset()


#: The process-wide hub the CLI and sweep runner share.
TELEMETRY = Telemetry()


def chrome_trace_from_spans(spans: Iterable[SpanRecord]) -> Dict[str, Any]:
    """Shape span records into the Chrome trace-event format.

    Complete (``ph: "X"``) events with microsecond timestamps; ``pid``
    tracks the recording process, so a parallel sweep renders one lane per
    worker in ``chrome://tracing``.
    """
    events = [
        {
            "name": record.name,
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "pid": record.pid,
            "tid": record.thread,
            "args": dict(record.attrs),
        }
        for record in spans
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_from_records(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event document from exported JSONL records (span type only)."""
    events = [
        {
            "name": record["name"],
            "ph": "X",
            "ts": record["start"] * 1e6,
            "dur": record["duration"] * 1e6,
            "pid": record["pid"],
            "tid": record["thread"],
            "args": dict(record.get("attrs") or {}),
        }
        for record in records
        if record.get("type") == "span"
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def load_jsonl(path) -> List[Dict[str, Any]]:
    """Read one record per line from a ``--telemetry`` JSONL file."""
    records = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not a JSON record: {error}") from None
    return records


def render_text(records: List[Dict[str, Any]]) -> str:
    """A terse human summary of an exported telemetry stream.

    Per span name: call count, total and maximum duration; then the scalar
    metrics and the trace summary, mirroring the stream's record order.
    """
    manifest = next((r for r in records if r.get("type") == "manifest"), {})
    spans = [r for r in records if r.get("type") == "span"]
    metrics = [r for r in records if r.get("type") == "metric"]
    traces = [r for r in records if r.get("type") == "trace"]

    by_name: Dict[str, List[float]] = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(float(record["duration"]))
    pids = {record["pid"] for record in spans}

    lines = [
        "telemetry stream"
        + (f" for {manifest['experiment']}" if manifest.get("experiment") else "")
        + (
            f" (rev {manifest.get('git_rev', '?')}, "
            f"kernels={manifest.get('kernels_backend', '?')})"
        ),
        f"{len(spans)} span(s) across {len(pids)} process(es)",
    ]
    if by_name:
        lines.append(f"{'calls':>8}  {'total':>12}  {'max':>12}  span")
        for name in sorted(by_name, key=lambda key: -sum(by_name[key])):
            durations = by_name[name]
            lines.append(
                f"{len(durations):>8}  {sum(durations) * 1e3:>10.3f}ms  "
                f"{max(durations) * 1e3:>10.3f}ms  {name}"
            )
    if metrics:
        lines.append("metrics:")
        for record in metrics:
            suffix = f" (count {record['count']})" if "count" in record else ""
            lines.append(
                f"  {record['kind']:>9}  {record['name']} = {record['value']:g}{suffix}"
            )
    for record in traces:
        lines.append(
            f"trace: {record['events']} event(s), {record['dropped']} dropped"
        )
    return "\n".join(lines)
