"""Prometheus-style text exposition for a :class:`MetricRegistry`.

Renders the classic ``text/plain; version=0.0.4`` format any Prometheus
scraper (or ``curl`` + eyeballs) understands::

    # HELP repro_serve_submitted_total accepted submissions
    # TYPE repro_serve_submitted_total counter
    repro_serve_submitted_total 3

Mapping from registry names to sample names: dots and dashes become
underscores under a ``repro_`` prefix, counters gain the conventional
``_total`` suffix, gauges are exposed verbatim, and histograms expand into
``_count`` / ``_sum`` samples plus one ``{quantile="..."}`` sample per
report quantile.  Families render in sorted order so the exposition text is
deterministic for a given registry state.

:func:`parse_exposition` is the inverse used by tests and the CI smoke
script: exposition text in, ``{sample name -> value}`` out, with malformed
lines rejected loudly.
"""

from __future__ import annotations

import math
import re
from typing import Dict

from repro.sim.metrics import MetricRegistry

#: Prefix of every exposed sample name.
EXPOSITION_PREFIX = "repro"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def sample_name(metric: str, prefix: str = EXPOSITION_PREFIX) -> str:
    """The exposition sample name of registry metric ``metric``."""
    return f"{prefix}_{_SANITIZE.sub('_', metric)}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_exposition(registry: MetricRegistry, prefix: str = EXPOSITION_PREFIX) -> str:
    """The registry's counters, gauges and histograms as exposition text."""
    lines = []
    for counter in registry.iter_counters():
        family = sample_name(counter.name, prefix) + "_total"
        if counter.description:
            lines.append(f"# HELP {family} {counter.description}")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(counter.value)}")
    for gauge in registry.iter_gauges():
        family = sample_name(gauge.name, prefix)
        if gauge.description:
            lines.append(f"# HELP {family} {gauge.description}")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(gauge.value)}")
    for histogram in registry.iter_histograms():
        family = sample_name(histogram.name, prefix)
        if histogram.description:
            lines.append(f"# HELP {family} {histogram.description}")
        lines.append(f"# TYPE {family} summary")
        for quantile in histogram.REPORT_QUANTILES:
            lines.append(
                f'{family}{{quantile="{quantile:g}"}} '
                f"{_format_value(histogram.quantile(quantile))}"
            )
        lines.append(f"{family}_count {histogram.count}")
        lines.append(f"{family}_sum {_format_value(histogram.total())}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{sample name [+labels] -> value}``.

    Comment lines (``# HELP`` / ``# TYPE``) are skipped; any other
    unparseable line raises :class:`ValueError` so a malformed exposition
    fails a test instead of silently shrinking.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = float(match.group("value"))
    return samples
