"""Quantum substrate.

The paper treats Bell pairs as interchangeable, countable resources with two
quality parameters: a distillation overhead ``D`` and a loss/decoherence
factor ``L``.  This package provides both that count-level abstraction and a
physically grounded layer underneath it:

* :mod:`repro.quantum.states` and :mod:`repro.quantum.gates` -- a small
  density-matrix simulator used to *validate* the analytic formulas
  (teleportation, swapping and purification circuits are executed on real
  density matrices in the test suite).
* :mod:`repro.quantum.fidelity` -- Werner-state fidelity algebra: swap
  composition, depolarising decay, teleportation fidelity.
* :mod:`repro.quantum.batch` -- the same algebra vectorized over whole
  batches of pairs (NumPy array ops), for Monte-Carlo studies that evolve
  thousands of pairs per step.
* :mod:`repro.quantum.bell_pair` / :mod:`repro.quantum.memory` -- the Bell
  pair entity and per-node quantum memory used by the entity-level
  simulations.
* :mod:`repro.quantum.distillation` -- BBPSSW and DEJMPS purification, plus
  the expected-cost model that produces the paper's ``D`` parameter.
* :mod:`repro.quantum.qec` -- the quantum-error-correction overhead model
  (rate ``R`` thinning of generation) of Section 3.2.
* :mod:`repro.quantum.decoherence` -- memory decoherence models producing
  the loss factor ``L`` of Section 3.2.
* :mod:`repro.quantum.swap` / :mod:`repro.quantum.teleportation` -- the two
  operations the network exists to support.
"""

from repro.quantum.bell_pair import BellPair, PairId, pair_key
from repro.quantum.batch import (
    BellPairBatch,
    chained_swap_fidelity_batch,
    decohered_fidelity_batch,
    depolarize_batch,
    distillation_outcomes_batch,
    swap_fidelity_batch,
    swap_outcomes_batch,
    teleportation_fidelity_batch,
)
from repro.quantum.decoherence import (
    CutoffPolicy,
    DecoherenceModel,
    ExponentialDecoherence,
    NoDecoherence,
    survival_probability,
)
from repro.quantum.distillation import (
    DistillationProtocol,
    bbpssw_output_fidelity,
    bbpssw_success_probability,
    dejmps_round,
    distillation_overhead,
    expected_pairs_for_target,
    rounds_to_target_fidelity,
)
from repro.quantum.fidelity import (
    WERNER_MINIMUM_USEFUL_FIDELITY,
    WernerState,
    depolarize,
    swap_fidelity,
    teleportation_fidelity,
    werner_from_fidelity,
)
from repro.quantum.gates import CNOT, CZ, HADAMARD, IDENTITY, PAULI_X, PAULI_Y, PAULI_Z
from repro.quantum.memory import MemoryFullError, QuantumMemory, StoredQubit
from repro.quantum.qec import QECCode, apply_qec_thinning, surface_code_overhead
from repro.quantum.states import DensityMatrix, bell_state, fidelity as state_fidelity
from repro.quantum.swap import SwapOutcome, SwapPhysics
from repro.quantum.teleportation import TeleportationOutcome, teleport, teleportation_circuit_fidelity

__all__ = [
    "BellPair",
    "BellPairBatch",
    "CNOT",
    "CZ",
    "CutoffPolicy",
    "DecoherenceModel",
    "DensityMatrix",
    "DistillationProtocol",
    "ExponentialDecoherence",
    "HADAMARD",
    "IDENTITY",
    "MemoryFullError",
    "NoDecoherence",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "PairId",
    "QECCode",
    "QuantumMemory",
    "StoredQubit",
    "SwapOutcome",
    "SwapPhysics",
    "TeleportationOutcome",
    "WERNER_MINIMUM_USEFUL_FIDELITY",
    "WernerState",
    "apply_qec_thinning",
    "bbpssw_output_fidelity",
    "bbpssw_success_probability",
    "bell_state",
    "chained_swap_fidelity_batch",
    "decohered_fidelity_batch",
    "dejmps_round",
    "depolarize",
    "depolarize_batch",
    "distillation_outcomes_batch",
    "distillation_overhead",
    "expected_pairs_for_target",
    "pair_key",
    "rounds_to_target_fidelity",
    "state_fidelity",
    "surface_code_overhead",
    "survival_probability",
    "swap_fidelity",
    "swap_fidelity_batch",
    "swap_outcomes_batch",
    "teleport",
    "teleportation_circuit_fidelity",
    "teleportation_fidelity",
    "teleportation_fidelity_batch",
    "werner_from_fidelity",
]
