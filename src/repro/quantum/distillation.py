"""Entanglement distillation (purification).

Section 3.2 of the paper folds distillation into a single per-pair overhead
``D_{x,y}``: the expected number of raw Bell pairs consumed to produce one
pair of sufficient fidelity.  This module provides

* the standard BBPSSW and DEJMPS recurrence formulas (verified against the
  density-matrix simulator in the tests),
* :func:`rounds_to_target_fidelity` / :func:`expected_pairs_for_target`,
  which derive the overhead ``D`` from physical parameters, and
* :func:`distillation_overhead`, the convenience used by experiment configs
  to translate "link fidelity F, target fidelity F*" into the ``D`` knob the
  balancing protocol and the LP consume.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.quantum.fidelity import WERNER_MINIMUM_USEFUL_FIDELITY, _validate_fidelity


class DistillationProtocol(enum.Enum):
    """Which recurrence purification protocol to model."""

    BBPSSW = "bbpssw"
    DEJMPS = "dejmps"


# ---------------------------------------------------------------------- #
# BBPSSW (Bennett et al. 1996) on Werner states
# ---------------------------------------------------------------------- #
def bbpssw_success_probability(fidelity: float) -> float:
    """Probability that one BBPSSW round on two Werner-``F`` pairs succeeds.

    ``p = F^2 + 2 F (1-F)/3 + 5 ((1-F)/3)^2``
    """
    _validate_fidelity(fidelity)
    noise = (1.0 - fidelity) / 3.0
    return fidelity**2 + 2.0 * fidelity * noise + 5.0 * noise**2


def bbpssw_output_fidelity(fidelity: float) -> float:
    """Fidelity of the surviving pair after a successful BBPSSW round.

    ``F' = (F^2 + ((1-F)/3)^2) / p``

    Strictly increases fidelity for ``F > 1/2`` and has fixed points at
    ``F = 1/2`` and ``F = 1``.
    """
    _validate_fidelity(fidelity)
    noise = (1.0 - fidelity) / 3.0
    return (fidelity**2 + noise**2) / bbpssw_success_probability(fidelity)


# ---------------------------------------------------------------------- #
# DEJMPS (Deutsch et al. 1996) on Bell-diagonal states
# ---------------------------------------------------------------------- #
def dejmps_round(coefficients: Tuple[float, float, float, float]) -> Tuple[Tuple[float, float, float, float], float]:
    """One DEJMPS round on two identical Bell-diagonal states.

    Parameters
    ----------
    coefficients:
        ``(A, B, C, D)`` weights of the four Bell states
        ``(Phi+, Psi+, Psi-, Phi-)``; must be non-negative and sum to 1.

    Returns
    -------
    tuple
        ``((A', B', C', D'), success_probability)`` where

        * ``N  = (A + D)^2 + (B + C)^2`` (the success probability),
        * ``A' = (A^2 + D^2) / N``
        * ``B' = 2 C D... `` -- concretely the standard recurrence
          ``B' = (2 A D) / N``, ``C' = (B^2 + C^2)/N``, ``D' = (2 B C)/N``.
    """
    a, b, c, d = coefficients
    for weight in coefficients:
        if weight < -1e-12:
            raise ValueError(f"Bell-diagonal coefficients must be non-negative, got {coefficients}")
    total = a + b + c + d
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"Bell-diagonal coefficients must sum to 1, got {total}")
    success = (a + d) ** 2 + (b + c) ** 2
    if success <= 0:
        raise ValueError("DEJMPS round has zero success probability")
    a_new = (a**2 + d**2) / success
    b_new = (2.0 * a * d) / success
    c_new = (b**2 + c**2) / success
    d_new = (2.0 * b * c) / success
    return (a_new, b_new, c_new, d_new), success


def werner_coefficients(fidelity: float) -> Tuple[float, float, float, float]:
    """Bell-diagonal coefficients ``(F, (1-F)/3, (1-F)/3, (1-F)/3)`` of a Werner state."""
    _validate_fidelity(fidelity)
    noise = (1.0 - fidelity) / 3.0
    return (fidelity, noise, noise, noise)


# ---------------------------------------------------------------------- #
# Overhead models -> the paper's D parameter
# ---------------------------------------------------------------------- #
def rounds_to_target_fidelity(
    initial_fidelity: float,
    target_fidelity: float,
    protocol: DistillationProtocol = DistillationProtocol.BBPSSW,
    max_rounds: int = 64,
) -> int:
    """Number of nested purification rounds needed to reach ``target_fidelity``.

    Raises
    ------
    ValueError
        If the initial fidelity is at or below the distillability threshold
        (1/2) while the target exceeds it, or if ``max_rounds`` rounds are
        not enough (the target may exceed the protocol's fixed point).
    """
    _validate_fidelity(initial_fidelity)
    _validate_fidelity(target_fidelity)
    if initial_fidelity >= target_fidelity:
        return 0
    if initial_fidelity <= WERNER_MINIMUM_USEFUL_FIDELITY:
        raise ValueError(
            f"initial fidelity {initial_fidelity} is not distillable (needs F > 1/2)"
        )
    fidelity = initial_fidelity
    coefficients = werner_coefficients(initial_fidelity)
    for round_index in range(1, max_rounds + 1):
        if protocol is DistillationProtocol.BBPSSW:
            fidelity = bbpssw_output_fidelity(fidelity)
        else:
            coefficients, _ = dejmps_round(coefficients)
            fidelity = coefficients[0]
        if fidelity >= target_fidelity:
            return round_index
    raise ValueError(
        f"could not reach target fidelity {target_fidelity} from {initial_fidelity} "
        f"within {max_rounds} rounds"
    )


def expected_pairs_for_target(
    initial_fidelity: float,
    target_fidelity: float,
    protocol: DistillationProtocol = DistillationProtocol.BBPSSW,
    max_rounds: int = 64,
) -> float:
    """Expected number of raw pairs consumed per pair at ``target_fidelity``.

    Nested (recurrence) purification: producing one level-``k`` pair requires
    two level-``k-1`` pairs and succeeds with probability ``p_k``, so the
    expected raw-pair cost satisfies ``cost_k = 2 cost_{k-1} / p_k``.
    """
    rounds = rounds_to_target_fidelity(initial_fidelity, target_fidelity, protocol, max_rounds)
    cost = 1.0
    fidelity = initial_fidelity
    coefficients = werner_coefficients(initial_fidelity)
    for _ in range(rounds):
        if protocol is DistillationProtocol.BBPSSW:
            success = bbpssw_success_probability(fidelity)
            fidelity = bbpssw_output_fidelity(fidelity)
        else:
            coefficients, success = dejmps_round(coefficients)
            fidelity = coefficients[0]
        cost = 2.0 * cost / success
    return cost


def distillation_overhead(
    link_fidelity: float,
    target_fidelity: float,
    protocol: DistillationProtocol = DistillationProtocol.BBPSSW,
) -> float:
    """The paper's ``D`` parameter derived from physical fidelities.

    ``D = 1`` when the link already meets the target; otherwise the expected
    raw-pair cost of nested purification.  The paper treats ``D`` as an
    integer knob swept from 1 upward (Figure 4); this function is the bridge
    from physics to that knob.
    """
    if link_fidelity >= target_fidelity:
        return 1.0
    return expected_pairs_for_target(link_fidelity, target_fidelity, protocol)


@dataclass(frozen=True)
class DistillationSchedule:
    """A concrete nested-purification schedule (round-by-round bookkeeping)."""

    initial_fidelity: float
    target_fidelity: float
    protocol: DistillationProtocol
    fidelities: Tuple[float, ...]
    success_probabilities: Tuple[float, ...]
    expected_raw_pairs: float

    @property
    def rounds(self) -> int:
        return len(self.success_probabilities)


def build_schedule(
    initial_fidelity: float,
    target_fidelity: float,
    protocol: DistillationProtocol = DistillationProtocol.BBPSSW,
    max_rounds: int = 64,
) -> DistillationSchedule:
    """Construct the full round-by-round schedule reaching ``target_fidelity``."""
    rounds = rounds_to_target_fidelity(initial_fidelity, target_fidelity, protocol, max_rounds)
    fidelities: List[float] = [initial_fidelity]
    successes: List[float] = []
    fidelity = initial_fidelity
    coefficients = werner_coefficients(initial_fidelity)
    cost = 1.0
    for _ in range(rounds):
        if protocol is DistillationProtocol.BBPSSW:
            success = bbpssw_success_probability(fidelity)
            fidelity = bbpssw_output_fidelity(fidelity)
        else:
            coefficients, success = dejmps_round(coefficients)
            fidelity = coefficients[0]
        successes.append(success)
        fidelities.append(fidelity)
        cost = 2.0 * cost / success
    return DistillationSchedule(
        initial_fidelity=initial_fidelity,
        target_fidelity=target_fidelity,
        protocol=protocol,
        fidelities=tuple(fidelities),
        success_probabilities=tuple(successes),
        expected_raw_pairs=cost,
    )
