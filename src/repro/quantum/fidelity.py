"""Werner-state fidelity algebra.

The network layer models every Bell pair as a *Werner state*: the mixture of
the ideal Bell state ``|Phi+>`` (with weight ``F``, the fidelity) and white
noise.  Werner states are closed under the operations the network performs
(entanglement swapping, depolarising memory decay, twirled purification), so
tracking the single scalar ``F`` per pair is exact within this model.  The
closed-form update rules below are verified against the density-matrix
simulator in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.quantum.states import DensityMatrix, bell_state

#: Below this fidelity a Werner pair carries no distillable entanglement
#: (the BBPSSW/DEJMPS protocols only improve fidelity above 1/2).
WERNER_MINIMUM_USEFUL_FIDELITY = 0.5


@dataclass(frozen=True)
class WernerState:
    """A Werner state parameterised by its fidelity with ``|Phi+>``.

    ``rho(F) = F |Phi+><Phi+| + (1 - F)/3 (I - |Phi+><Phi+|)``
    """

    fidelity: float

    def __post_init__(self) -> None:
        if not 0.25 <= self.fidelity <= 1.0 + 1e-12:
            raise ValueError(
                f"Werner fidelity must be within [0.25, 1], got {self.fidelity}"
            )

    def to_density_matrix(self) -> DensityMatrix:
        """Materialise the Werner state as a 4x4 density matrix."""
        ideal = bell_state("phi+").matrix
        noise = (np.eye(4, dtype=complex) - ideal) / 3.0
        return DensityMatrix(self.fidelity * ideal + (1.0 - self.fidelity) * noise)

    def werner_parameter(self) -> float:
        """The Werner parameter ``w`` in ``rho = w |Phi+><Phi+| + (1-w) I/4``."""
        return (4.0 * self.fidelity - 1.0) / 3.0

    def is_distillable(self) -> bool:
        """Whether recurrence purification can improve this pair (``F > 1/2``)."""
        return self.fidelity > WERNER_MINIMUM_USEFUL_FIDELITY

    def swap_with(self, other: "WernerState") -> "WernerState":
        """The Werner state resulting from swapping this pair with ``other``."""
        return WernerState(swap_fidelity(self.fidelity, other.fidelity))

    def after_depolarizing(self, decay: float) -> "WernerState":
        """The Werner state after a depolarising channel with survival weight ``decay``."""
        return WernerState(depolarize(self.fidelity, decay))


def werner_from_fidelity(fidelity: float) -> np.ndarray:
    """Return the 4x4 Werner density matrix with the given fidelity."""
    return WernerState(fidelity).to_density_matrix().matrix


def swap_fidelity(fidelity_a: float, fidelity_b: float) -> float:
    """Fidelity of the pair produced by swapping two Werner pairs.

    With perfect local operations, swapping Werner pairs of fidelities
    ``F_a`` and ``F_b`` yields a Werner pair of fidelity

    ``F = F_a F_b + (1 - F_a)(1 - F_b) / 3``

    which follows from composing the two depolarising channels the Werner
    pairs are equivalent to.  The formula is symmetric, has fixed point 1,
    and degrades towards 1/4 (a completely mixed pair) as either input
    degrades.
    """
    _validate_fidelity(fidelity_a)
    _validate_fidelity(fidelity_b)
    return fidelity_a * fidelity_b + (1.0 - fidelity_a) * (1.0 - fidelity_b) / 3.0


def chained_swap_fidelity(fidelities: Iterable[float]) -> float:
    """Fidelity after swapping a chain of Werner pairs end to end.

    The order of swaps does not affect the final fidelity in the Werner
    model (the update rule is associative and commutative), mirroring the
    paper's observation that swap order along a path is arbitrary.
    """
    result = None
    for fidelity in fidelities:
        _validate_fidelity(fidelity)
        result = fidelity if result is None else swap_fidelity(result, fidelity)
    if result is None:
        raise ValueError("chained_swap_fidelity requires at least one pair")
    return result


def depolarize(fidelity: float, survival: float) -> float:
    """Apply a depolarising (white-noise) channel to a Werner pair.

    ``survival`` is the probability the pair is unaffected; with probability
    ``1 - survival`` it is replaced by the maximally mixed state, whose
    fidelity with the ideal Bell state is 1/4:

    ``F' = survival * F + (1 - survival) / 4``
    """
    _validate_fidelity(fidelity)
    if not 0.0 <= survival <= 1.0:
        raise ValueError(f"survival must be within [0, 1], got {survival}")
    return survival * fidelity + (1.0 - survival) * 0.25


def decohered_fidelity(initial_fidelity: float, elapsed: float, coherence_time: float) -> float:
    """Fidelity of a stored Werner pair after ``elapsed`` time in memory.

    Uses the standard exponential depolarising-memory model:
    ``F(t) = 1/4 + (F0 - 1/4) exp(-t / T)`` with coherence time ``T``.
    """
    _validate_fidelity(initial_fidelity)
    if elapsed < 0:
        raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
    if coherence_time <= 0:
        raise ValueError(f"coherence_time must be positive, got {coherence_time}")
    survival = math.exp(-elapsed / coherence_time)
    return depolarize(initial_fidelity, survival)


def teleportation_fidelity(pair_fidelity: float) -> float:
    """Average teleportation fidelity achieved with a Werner resource pair.

    Teleporting an arbitrary (uniformly random) pure qubit state through a
    Werner channel of fidelity ``F`` achieves average output fidelity

    ``F_tel = (2 F + 1) / 3``

    which equals 1 for a perfect pair and 1/2 (no better than guessing) for
    a completely dephased pair at ``F = 1/4``.
    """
    _validate_fidelity(pair_fidelity)
    return (2.0 * pair_fidelity + 1.0) / 3.0


def fidelity_after_hops(link_fidelity: float, hops: int) -> float:
    """Fidelity of an end-to-end pair built by swapping ``hops`` identical links."""
    if hops <= 0:
        raise ValueError(f"hops must be positive, got {hops}")
    return chained_swap_fidelity([link_fidelity] * hops)


def required_link_fidelity(target: float, hops: int, tolerance: float = 1e-9) -> float:
    """Minimum per-link fidelity such that ``hops`` swaps still meet ``target``.

    Solved by bisection on the monotone map ``F_link -> fidelity_after_hops``.
    Raises :class:`ValueError` when even perfect links cannot reach the
    target (which never happens for ``target <= 1``).
    """
    _validate_fidelity(target)
    if hops <= 0:
        raise ValueError(f"hops must be positive, got {hops}")
    low, high = 0.25, 1.0
    if fidelity_after_hops(high, hops) < target - tolerance:
        raise ValueError(f"target fidelity {target} unreachable over {hops} hops")
    while high - low > tolerance:
        middle = (low + high) / 2.0
        if fidelity_after_hops(middle, hops) >= target:
            high = middle
        else:
            low = middle
    return high


def _validate_fidelity(fidelity: float) -> None:
    if not 0.25 - 1e-12 <= fidelity <= 1.0 + 1e-12:
        raise ValueError(f"fidelity must be within [0.25, 1], got {fidelity}")
