"""Teleportation.

Teleportation is the application the Quantum Internet exists to serve
(Figure 1 of the paper): a Bell pair shared between origin and destination
plus two classical bits move an arbitrary qubit state between them.  The
network layer only needs to know that a teleportation *consumes* one
``[origin, destination]`` Bell pair; this module provides that consumption
record plus a circuit-level implementation used to validate the fidelity
formula ``F_tel = (2 F_pair + 1) / 3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.quantum.bell_pair import BellPair, NodeId
from repro.quantum.fidelity import WernerState, teleportation_fidelity
from repro.quantum.gates import CNOT, HADAMARD, IDENTITY, PAULI_X, PAULI_Z
from repro.quantum.states import DensityMatrix, fidelity as state_fidelity


@dataclass(frozen=True)
class TeleportationOutcome:
    """Record of one completed teleportation."""

    origin: NodeId
    destination: NodeId
    consumed_pair_id: int
    classical_bits: Tuple[int, int]
    expected_fidelity: float


def teleport(
    pair: BellPair,
    origin: NodeId,
    destination: NodeId,
    rng: Optional[np.random.Generator] = None,
) -> TeleportationOutcome:
    """Consume ``pair`` to teleport a qubit from ``origin`` to ``destination``.

    The pair must span exactly the origin/destination nodes.  The qubit
    payload itself is irrelevant to the network layer, so only the two
    classical correction bits and the expected output fidelity are recorded.
    """
    if not pair.involves(origin) or not pair.involves(destination):
        raise ValueError(
            f"pair {pair.key} does not connect origin {origin!r} and destination {destination!r}"
        )
    if origin == destination:
        raise ValueError("origin and destination must differ")
    pair.mark_consumed()
    generator = rng if rng is not None else np.random.default_rng()
    bits = (int(generator.integers(0, 2)), int(generator.integers(0, 2)))
    return TeleportationOutcome(
        origin=origin,
        destination=destination,
        consumed_pair_id=pair.pair_id,
        classical_bits=bits,
        expected_fidelity=teleportation_fidelity(pair.fidelity),
    )


def teleportation_circuit_fidelity(
    payload_state: np.ndarray,
    resource_fidelity: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Run the full teleportation circuit on density matrices and return output fidelity.

    Qubit layout: 0 = payload at the origin, 1 = origin half of the resource
    pair, 2 = destination half.  The resource pair is a Werner state of the
    requested fidelity.  The function performs the origin-side Bell
    measurement, applies the conditioned Pauli correction at the
    destination, and returns the fidelity of the destination qubit with the
    original payload.

    Averaged over random payloads, this converges to
    ``(2 * resource_fidelity + 1) / 3`` -- the check performed in the tests.
    """
    payload = DensityMatrix.from_statevector(payload_state)
    resource = WernerState(resource_fidelity).to_density_matrix()
    joint = payload.tensor(resource)

    # Origin-side Bell measurement on (payload, origin half) = qubits (0, 1).
    joint = joint.apply_unitary(CNOT, [0, 1])
    joint = joint.apply_unitary(HADAMARD, [0])
    generator = rng if rng is not None else np.random.default_rng()
    bit_a, _, joint = joint.measure(0, rng=generator)
    bit_b, _, joint = joint.measure(1, rng=generator)

    # Destination-side Pauli correction: X^{bit_b} then Z^{bit_a}.
    correction = IDENTITY
    if bit_b == 1:
        correction = PAULI_X @ correction
    if bit_a == 1:
        correction = PAULI_Z @ correction
    joint = joint.apply_unitary(correction, [2])

    received = joint.partial_trace([2])
    return state_fidelity(received, DensityMatrix.from_statevector(payload_state))
