"""Entanglement swapping.

A swap at repeater ``i`` (written ``x <- i -> y`` in the paper) consumes one
``[x, i]`` pair and one ``[i, y]`` pair and produces one ``[x, y]`` pair,
after a Bell-state measurement at ``i`` and a 2-bit classical message that
lets ``x`` or ``y`` apply the Pauli correction.

:class:`SwapPhysics` centralises the quality model: output fidelity
(Werner composition, optionally degraded by imperfect measurements) and
success probability (linear-optics Bell measurements succeed only half the
time; deterministic measurements always succeed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.quantum.bell_pair import BellPair, NodeId
from repro.quantum.fidelity import depolarize, swap_fidelity


@dataclass(frozen=True)
class SwapOutcome:
    """The result of attempting one entanglement swap."""

    success: bool
    produced: Optional[BellPair]
    repeater: NodeId
    consumed_ids: Tuple[int, int]
    classical_bits: Tuple[int, int]


class SwapPhysics:
    """Quality and success model for entanglement swaps.

    Parameters
    ----------
    measurement_efficiency:
        Probability that the Bell-state measurement at the repeater succeeds
        (1.0 for deterministic matter-qubit measurements, 0.5 for standard
        linear-optics BSMs).
    gate_fidelity:
        Depolarising weight applied to the output pair to model imperfect
        local operations at the repeater (1.0 = perfect gates).
    """

    def __init__(self, measurement_efficiency: float = 1.0, gate_fidelity: float = 1.0):
        if not 0.0 < measurement_efficiency <= 1.0:
            raise ValueError(
                f"measurement_efficiency must be in (0, 1], got {measurement_efficiency}"
            )
        if not 0.0 < gate_fidelity <= 1.0:
            raise ValueError(f"gate_fidelity must be in (0, 1], got {gate_fidelity}")
        self.measurement_efficiency = measurement_efficiency
        self.gate_fidelity = gate_fidelity

    def output_fidelity(self, fidelity_a: float, fidelity_b: float) -> float:
        """Fidelity of the output pair given the two input fidelities."""
        ideal = swap_fidelity(fidelity_a, fidelity_b)
        return depolarize(ideal, self.gate_fidelity)

    def attempt(
        self,
        repeater: NodeId,
        pair_a: BellPair,
        pair_b: BellPair,
        now: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> SwapOutcome:
        """Attempt the swap ``other(pair_a) <- repeater -> other(pair_b)``.

        Both input pairs are consumed regardless of success (a failed
        linear-optics Bell measurement still destroys the photons), which is
        why lossy swapping hardware makes planned-path reservations so
        expensive -- one of the motivations discussed in Section 2.
        """
        if not pair_a.involves(repeater) or not pair_b.involves(repeater):
            raise ValueError(
                f"both pairs must have one qubit at the repeater {repeater!r}; "
                f"got {pair_a.key} and {pair_b.key}"
            )
        if pair_a.pair_id == pair_b.pair_id:
            raise ValueError("cannot swap a Bell pair with itself")
        end_a = pair_a.other_end(repeater)
        end_b = pair_b.other_end(repeater)
        if end_a == end_b:
            raise ValueError(
                f"swap at {repeater!r} would produce a degenerate pair at {end_a!r}; "
                "the balancer must never select such a candidate"
            )
        pair_a.mark_consumed()
        pair_b.mark_consumed()

        generator = rng if rng is not None else np.random.default_rng()
        classical_bits = (int(generator.integers(0, 2)), int(generator.integers(0, 2)))
        if generator.random() > self.measurement_efficiency:
            return SwapOutcome(
                success=False,
                produced=None,
                repeater=repeater,
                consumed_ids=(pair_a.pair_id, pair_b.pair_id),
                classical_bits=classical_bits,
            )

        produced = BellPair(
            node_a=end_a,
            node_b=end_b,
            fidelity=self.output_fidelity(pair_a.fidelity, pair_b.fidelity),
            created_at=now,
            provenance="swap",
            swap_depth=max(pair_a.swap_depth, pair_b.swap_depth) + 1,
        )
        return SwapOutcome(
            success=True,
            produced=produced,
            repeater=repeater,
            consumed_ids=(pair_a.pair_id, pair_b.pair_id),
            classical_bits=classical_bits,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwapPhysics(measurement_efficiency={self.measurement_efficiency}, "
            f"gate_fidelity={self.gate_fidelity})"
        )
