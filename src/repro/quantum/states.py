"""A small density-matrix simulator.

The network-level simulations never manipulate density matrices -- they use
the Werner-state fidelity algebra in :mod:`repro.quantum.fidelity`.  This
module exists so the algebra can be *derived and verified* rather than
asserted: the test suite builds Bell pairs, applies depolarising noise,
performs entanglement swaps, teleportation and purification on actual
density matrices and checks that the closed-form formulas used by the
network layer agree.

Only a handful of qubits are ever simulated at once (at most four for the
purification circuit), so a dense ``2^n x 2^n`` complex matrix is perfectly
adequate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.gates import CNOT, HADAMARD, IDENTITY, PAULI_X, PAULI_Z


class DensityMatrix:
    """An ``n``-qubit mixed state represented by its density matrix.

    Qubits are indexed ``0 .. n-1`` with qubit 0 the most significant bit of
    the computational-basis index (the usual big-endian kron ordering).
    """

    def __init__(self, matrix: np.ndarray, validate: bool = True):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"density matrix must be square, got shape {matrix.shape}")
        dimension = matrix.shape[0]
        n_qubits = int(round(np.log2(dimension)))
        if 2**n_qubits != dimension:
            raise ValueError(f"dimension {dimension} is not a power of two")
        if validate:
            if not np.allclose(matrix, matrix.conj().T, atol=1e-9):
                raise ValueError("density matrix must be Hermitian")
            trace = np.trace(matrix).real
            if not np.isclose(trace, 1.0, atol=1e-8):
                raise ValueError(f"density matrix must have unit trace, got {trace}")
        self._matrix = matrix
        self._n_qubits = n_qubits

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_statevector(cls, vector: Sequence[complex]) -> "DensityMatrix":
        """Build a pure state ``|psi><psi|`` from a state vector."""
        vector = np.asarray(vector, dtype=complex)
        norm = np.linalg.norm(vector)
        if norm == 0:
            raise ValueError("state vector must be non-zero")
        vector = vector / norm
        return cls(np.outer(vector, vector.conj()))

    @classmethod
    def computational_basis(cls, n_qubits: int, index: int = 0) -> "DensityMatrix":
        """Build the pure computational-basis state ``|index>`` on ``n_qubits``."""
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        dimension = 2**n_qubits
        if not 0 <= index < dimension:
            raise ValueError(f"basis index {index} out of range for {n_qubits} qubits")
        vector = np.zeros(dimension, dtype=complex)
        vector[index] = 1.0
        return cls.from_statevector(vector)

    @classmethod
    def maximally_mixed(cls, n_qubits: int) -> "DensityMatrix":
        """The maximally mixed state ``I / 2^n``."""
        dimension = 2**n_qubits
        return cls(np.eye(dimension, dtype=complex) / dimension)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> np.ndarray:
        """The underlying complex matrix (a copy is *not* made)."""
        return self._matrix

    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    def purity(self) -> float:
        """``Tr(rho^2)``; 1 for pure states, ``1/2^n`` for the maximally mixed state."""
        return float(np.trace(self._matrix @ self._matrix).real)

    def probabilities(self) -> np.ndarray:
        """The computational-basis measurement probabilities (the diagonal)."""
        return np.clip(np.diag(self._matrix).real, 0.0, 1.0)

    # ------------------------------------------------------------------ #
    # Composition and evolution
    # ------------------------------------------------------------------ #
    def tensor(self, other: "DensityMatrix") -> "DensityMatrix":
        """Return the joint state ``self (x) other``."""
        return DensityMatrix(np.kron(self._matrix, other._matrix), validate=False)

    def _expand_operator(self, operator: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Expand ``operator`` acting on ``qubits`` to the full Hilbert space.

        The operator is given in the ordering of ``qubits`` (first listed
        qubit is the most significant bit of the operator's index space).
        """
        operator = np.asarray(operator, dtype=complex)
        k = len(qubits)
        if operator.shape != (2**k, 2**k):
            raise ValueError(
                f"operator shape {operator.shape} does not act on {k} qubits"
            )
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            if not 0 <= qubit < self._n_qubits:
                raise ValueError(f"qubit index {qubit} out of range")
        n = self._n_qubits
        full = np.zeros((2**n, 2**n), dtype=complex)
        others = [q for q in range(n) if q not in qubits]
        # Iterate over all basis states, mapping (qubits-part, others-part).
        for row_local in range(2**k):
            for col_local in range(2**k):
                amplitude = operator[row_local, col_local]
                if amplitude == 0:
                    continue
                for rest in range(2 ** len(others)):
                    row_bits = [0] * n
                    col_bits = [0] * n
                    for position, qubit in enumerate(qubits):
                        row_bits[qubit] = (row_local >> (k - 1 - position)) & 1
                        col_bits[qubit] = (col_local >> (k - 1 - position)) & 1
                    for position, qubit in enumerate(others):
                        bit = (rest >> (len(others) - 1 - position)) & 1
                        row_bits[qubit] = bit
                        col_bits[qubit] = bit
                    row_index = int("".join(str(b) for b in row_bits), 2) if n else 0
                    col_index = int("".join(str(b) for b in col_bits), 2) if n else 0
                    full[row_index, col_index] += amplitude
        return full

    def apply_unitary(self, unitary: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Return the state after applying ``unitary`` to ``qubits``."""
        full = self._expand_operator(unitary, qubits)
        return DensityMatrix(full @ self._matrix @ full.conj().T, validate=False)

    def apply_kraus(self, kraus_operators: Iterable[np.ndarray], qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a quantum channel given by Kraus operators on ``qubits``."""
        result = np.zeros_like(self._matrix)
        for kraus in kraus_operators:
            full = self._expand_operator(kraus, qubits)
            result += full @ self._matrix @ full.conj().T
        return DensityMatrix(result, validate=False)

    def depolarize(self, qubit: int, probability: float) -> "DensityMatrix":
        """Apply a single-qubit depolarising channel with error probability ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {probability}")
        from repro.quantum.gates import PAULI_X, PAULI_Y, PAULI_Z  # local import avoids cycle noise

        kraus = [
            np.sqrt(1 - probability) * IDENTITY,
            np.sqrt(probability / 3) * PAULI_X,
            np.sqrt(probability / 3) * PAULI_Y,
            np.sqrt(probability / 3) * PAULI_Z,
        ]
        return self.apply_kraus(kraus, [qubit])

    # ------------------------------------------------------------------ #
    # Measurement and reduction
    # ------------------------------------------------------------------ #
    def measure(
        self, qubit: int, rng: Optional[np.random.Generator] = None, outcome: Optional[int] = None
    ) -> Tuple[int, float, "DensityMatrix"]:
        """Measure ``qubit`` in the computational basis.

        Parameters
        ----------
        qubit:
            Which qubit to measure.
        rng:
            Random generator used to sample the outcome.  Ignored when
            ``outcome`` is provided.
        outcome:
            Force a specific outcome (0 or 1); used for post-selection in the
            purification analysis.

        Returns
        -------
        tuple
            ``(outcome, probability, post_measurement_state)`` where the
            post-measurement state still contains the measured qubit
            (collapsed); use :meth:`partial_trace` to drop it.
        """
        projector_0 = np.array([[1, 0], [0, 0]], dtype=complex)
        projector_1 = np.array([[0, 0], [0, 1]], dtype=complex)
        p0_full = self._expand_operator(projector_0, [qubit])
        p1_full = self._expand_operator(projector_1, [qubit])
        prob_0 = float(np.trace(p0_full @ self._matrix).real)
        prob_0 = min(max(prob_0, 0.0), 1.0)
        prob_1 = 1.0 - prob_0
        if outcome is None:
            generator = rng if rng is not None else np.random.default_rng()
            outcome = int(generator.random() >= prob_0)
        if outcome not in (0, 1):
            raise ValueError(f"measurement outcome must be 0 or 1, got {outcome}")
        probability = prob_0 if outcome == 0 else prob_1
        projector = p0_full if outcome == 0 else p1_full
        if probability <= 1e-15:
            raise ValueError(f"cannot post-select on a zero-probability outcome {outcome}")
        post = projector @ self._matrix @ projector / probability
        return outcome, probability, DensityMatrix(post, validate=False)

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not listed in ``keep``."""
        keep = list(keep)
        for qubit in keep:
            if not 0 <= qubit < self._n_qubits:
                raise ValueError(f"qubit index {qubit} out of range")
        if len(set(keep)) != len(keep):
            raise ValueError("duplicate qubits in keep list")
        n = self._n_qubits
        drop = [q for q in range(n) if q not in keep]
        reshaped = self._matrix.reshape([2] * (2 * n))
        # Axes: row qubits are 0..n-1, column qubits are n..2n-1.
        for count, qubit in enumerate(sorted(drop)):
            axis_row = qubit - count
            axis_col = axis_row + (n - count)
            reshaped = np.trace(reshaped, axis1=axis_row, axis2=axis_col)
        k = len(keep)
        result = reshaped.reshape(2**k, 2**k)
        # Reorder the kept qubits to the order requested by the caller.
        current_order = sorted(keep)
        if current_order != keep:
            permutation = [current_order.index(q) for q in keep]
            result_tensor = result.reshape([2] * (2 * k))
            axes = permutation + [p + k for p in permutation]
            result_tensor = np.transpose(result_tensor, axes)
            result = result_tensor.reshape(2**k, 2**k)
        return DensityMatrix(result, validate=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DensityMatrix(n_qubits={self._n_qubits}, purity={self.purity():.4f})"


# ---------------------------------------------------------------------- #
# Bell states and fidelity
# ---------------------------------------------------------------------- #
_BELL_VECTORS = {
    "phi+": np.array([1, 0, 0, 1], dtype=complex) / np.sqrt(2),
    "phi-": np.array([1, 0, 0, -1], dtype=complex) / np.sqrt(2),
    "psi+": np.array([0, 1, 1, 0], dtype=complex) / np.sqrt(2),
    "psi-": np.array([0, 1, -1, 0], dtype=complex) / np.sqrt(2),
}


def bell_state(which: str = "phi+") -> DensityMatrix:
    """Return one of the four Bell states as a two-qubit :class:`DensityMatrix`."""
    key = which.lower()
    if key not in _BELL_VECTORS:
        raise ValueError(f"unknown Bell state {which!r}; choose from {sorted(_BELL_VECTORS)}")
    return DensityMatrix.from_statevector(_BELL_VECTORS[key])


def bell_state_vector(which: str = "phi+") -> np.ndarray:
    """Return the state vector of one of the four Bell states."""
    key = which.lower()
    if key not in _BELL_VECTORS:
        raise ValueError(f"unknown Bell state {which!r}; choose from {sorted(_BELL_VECTORS)}")
    return _BELL_VECTORS[key].copy()


def fidelity(state: DensityMatrix, target: DensityMatrix) -> float:
    """Fidelity of ``state`` with respect to a *pure* ``target`` state.

    For a pure target ``|psi>``, ``F = <psi| rho |psi>``, which is the form
    used throughout the paper (fidelity with respect to the ideal Bell
    state).  ``target`` must therefore be (numerically) pure.
    """
    if state.n_qubits != target.n_qubits:
        raise ValueError("states must have the same number of qubits")
    if target.purity() < 1.0 - 1e-6:
        raise ValueError("fidelity() requires a pure target state")
    return float(np.trace(target.matrix @ state.matrix).real)


def create_bell_pair_circuit() -> DensityMatrix:
    """Create ``|Phi+>`` the way hardware does: ``CNOT . (H (x) I) |00>``."""
    state = DensityMatrix.computational_basis(2, 0)
    state = state.apply_unitary(HADAMARD, [0])
    state = state.apply_unitary(CNOT, [0, 1])
    return state


def bell_measurement(
    state: DensityMatrix,
    qubit_a: int,
    qubit_b: int,
    rng: Optional[np.random.Generator] = None,
    outcomes: Optional[Tuple[int, int]] = None,
) -> Tuple[Tuple[int, int], DensityMatrix]:
    """Perform a Bell-state measurement on ``(qubit_a, qubit_b)``.

    The measurement is realised as the standard circuit: CNOT with
    ``qubit_a`` as control, Hadamard on ``qubit_a``, then computational-basis
    measurement of both qubits.  Returns the two classical bits and the
    post-measurement state (measured qubits still present but collapsed).
    """
    working = state.apply_unitary(CNOT, [qubit_a, qubit_b])
    working = working.apply_unitary(HADAMARD, [qubit_a])
    forced_a = outcomes[0] if outcomes is not None else None
    forced_b = outcomes[1] if outcomes is not None else None
    bit_a, _, working = working.measure(qubit_a, rng=rng, outcome=forced_a)
    bit_b, _, working = working.measure(qubit_b, rng=rng, outcome=forced_b)
    return (bit_a, bit_b), working


def pauli_correction(bit_a: int, bit_b: int) -> np.ndarray:
    """The Pauli correction ``Z^{bit_a} X^{bit_b}`` applied after a Bell measurement."""
    correction = IDENTITY
    if bit_b == 1:
        correction = PAULI_X @ correction
    if bit_a == 1:
        correction = PAULI_Z @ correction
    return correction
