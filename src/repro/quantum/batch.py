"""Vectorized Werner-state algebra over whole batches of Bell pairs.

:mod:`repro.quantum.fidelity` and :mod:`repro.quantum.swap` operate one
pair at a time, which is the right granularity for the entity-level
simulations but a Python-loop bottleneck for Monte-Carlo studies that
evolve thousands of pairs per step (coherence sweeps, capacity planning,
fidelity-distribution estimates).  This module provides the same closed
forms as NumPy array operations: every function accepts array inputs of
any shape, broadcasts scalars, and matches its scalar counterpart
element-wise to floating-point round-off (enforced by a property test in
``tests/test_quantum_batch.py``).

:class:`BellPairBatch` bundles the per-pair state (fidelity, creation
time) into a struct-of-arrays so a whole population can be decohered,
swapped, or distilled in a handful of vector ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.quantum.fidelity import WERNER_MINIMUM_USEFUL_FIDELITY

ArrayLike = Union[float, np.ndarray]


def _as_fidelity_array(values: ArrayLike, name: str = "fidelity") -> np.ndarray:
    """Validate and convert fidelities to a float64 array (broadcast-ready)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size and (
        np.any(array < 0.25 - 1e-12) or np.any(array > 1.0 + 1e-12)
    ):
        bad = array[(array < 0.25 - 1e-12) | (array > 1.0 + 1e-12)].flat[0]
        raise ValueError(f"{name} must be within [0.25, 1], got {bad}")
    return array


# ---------------------------------------------------------------------- #
# Fidelity evolution
# ---------------------------------------------------------------------- #
def swap_fidelity_batch(fidelity_a: ArrayLike, fidelity_b: ArrayLike) -> np.ndarray:
    """Element-wise swap composition ``F = F_a F_b + (1-F_a)(1-F_b)/3``.

    Vectorized counterpart of :func:`repro.quantum.fidelity.swap_fidelity`.
    """
    a = _as_fidelity_array(fidelity_a, "fidelity_a")
    b = _as_fidelity_array(fidelity_b, "fidelity_b")
    return a * b + (1.0 - a) * (1.0 - b) / 3.0


def chained_swap_fidelity_batch(fidelities: np.ndarray, axis: int = -1) -> np.ndarray:
    """End-to-end fidelity of many swap chains at once.

    ``fidelities`` holds one chain per row (by default): an array of shape
    ``(batch, hops)`` reduces along ``axis`` to shape ``(batch,)``.  The
    Werner swap rule is associative and commutative, so a left fold along
    the axis reproduces :func:`repro.quantum.fidelity.chained_swap_fidelity`
    exactly.
    """
    array = _as_fidelity_array(fidelities)
    if array.shape == () or array.shape[axis] == 0:
        raise ValueError("chained_swap_fidelity_batch requires at least one pair per chain")
    moved = np.moveaxis(array, axis, 0)
    result = moved[0]
    for hop in moved[1:]:
        result = result * hop + (1.0 - result) * (1.0 - hop) / 3.0
    return result


def depolarize_batch(fidelity: ArrayLike, survival: ArrayLike) -> np.ndarray:
    """Element-wise depolarising channel ``F' = s F + (1-s)/4``.

    Vectorized counterpart of :func:`repro.quantum.fidelity.depolarize`.
    """
    f = _as_fidelity_array(fidelity)
    s = np.asarray(survival, dtype=np.float64)
    if s.size and (np.any(s < 0.0) or np.any(s > 1.0)):
        bad = s[(s < 0.0) | (s > 1.0)].flat[0]
        raise ValueError(f"survival must be within [0, 1], got {bad}")
    return s * f + (1.0 - s) * 0.25


def decohered_fidelity_batch(
    initial_fidelity: ArrayLike, elapsed: ArrayLike, coherence_time: float
) -> np.ndarray:
    """Exponential memory decay ``F(t) = 1/4 + (F0 - 1/4) e^{-t/T}`` for a batch.

    Vectorized counterpart of
    :func:`repro.quantum.fidelity.decohered_fidelity`; ``elapsed`` may be a
    scalar or a per-pair array (pairs stored at different times).
    """
    t = np.asarray(elapsed, dtype=np.float64)
    if t.size and np.any(t < 0):
        raise ValueError(f"elapsed time must be non-negative, got {t[t < 0].flat[0]}")
    if coherence_time <= 0:
        raise ValueError(f"coherence_time must be positive, got {coherence_time}")
    return depolarize_batch(initial_fidelity, np.exp(-t / coherence_time))


def teleportation_fidelity_batch(pair_fidelity: ArrayLike) -> np.ndarray:
    """Average teleportation fidelity ``(2F + 1)/3`` for a batch of resource pairs."""
    return (2.0 * _as_fidelity_array(pair_fidelity) + 1.0) / 3.0


# ---------------------------------------------------------------------- #
# Probabilistic outcomes: swapping and distillation
# ---------------------------------------------------------------------- #
def swap_outcomes_batch(
    fidelity_a: ArrayLike,
    fidelity_b: ArrayLike,
    rng: Optional[np.random.Generator] = None,
    measurement_efficiency: float = 1.0,
    gate_fidelity: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Attempt one entanglement swap per element of a batch.

    The batched counterpart of :meth:`repro.quantum.swap.SwapPhysics.attempt`
    for the quality model alone (no pair bookkeeping): each slot ``i``
    swaps a pair of fidelity ``fidelity_a[i]`` with one of ``fidelity_b[i]``.

    Returns
    -------
    tuple
        ``(success, fidelity)`` arrays; ``fidelity[i]`` is meaningful only
        where ``success[i]`` (a failed linear-optics Bell measurement
        destroys both inputs and produces nothing).
    """
    if not 0.0 < measurement_efficiency <= 1.0:
        raise ValueError(
            f"measurement_efficiency must be in (0, 1], got {measurement_efficiency}"
        )
    if not 0.0 < gate_fidelity <= 1.0:
        raise ValueError(f"gate_fidelity must be in (0, 1], got {gate_fidelity}")
    ideal = swap_fidelity_batch(fidelity_a, fidelity_b)
    produced = depolarize_batch(ideal, gate_fidelity)
    if measurement_efficiency >= 1.0:
        success = np.ones(produced.shape, dtype=bool)
    else:
        generator = rng if rng is not None else np.random.default_rng()
        success = generator.random(produced.shape) <= measurement_efficiency
    return success, produced


def bbpssw_success_probability_batch(fidelity: ArrayLike) -> np.ndarray:
    """BBPSSW round success probability ``F^2 + 2F(1-F)/3 + 5((1-F)/3)^2``, batched."""
    f = _as_fidelity_array(fidelity)
    noise = (1.0 - f) / 3.0
    return f**2 + 2.0 * f * noise + 5.0 * noise**2


def bbpssw_output_fidelity_batch(fidelity: ArrayLike) -> np.ndarray:
    """BBPSSW post-success fidelity ``(F^2 + ((1-F)/3)^2) / p``, batched."""
    f = _as_fidelity_array(fidelity)
    noise = (1.0 - f) / 3.0
    return (f**2 + noise**2) / bbpssw_success_probability_batch(f)


def distillation_outcomes_batch(
    fidelity: ArrayLike, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """One BBPSSW purification attempt per batch slot.

    Each slot consumes two pairs of the given fidelity; the round succeeds
    with :func:`bbpssw_success_probability_batch` and then yields one pair
    at :func:`bbpssw_output_fidelity_batch`.

    Returns
    -------
    tuple
        ``(success, fidelity)`` arrays; ``fidelity[i]`` is meaningful only
        where ``success[i]``.
    """
    f = _as_fidelity_array(fidelity)
    probability = bbpssw_success_probability_batch(f)
    success = rng.random(f.shape) <= probability
    return success, bbpssw_output_fidelity_batch(f)


# ---------------------------------------------------------------------- #
# Struct-of-arrays pair population
# ---------------------------------------------------------------------- #
@dataclass
class BellPairBatch:
    """A population of Bell pairs stored as parallel arrays.

    Attributes
    ----------
    fidelity:
        Per-pair Werner fidelity, shape ``(n,)``.
    created_at:
        Per-pair creation (storage) time, shape ``(n,)``.
    """

    fidelity: np.ndarray
    created_at: np.ndarray

    def __post_init__(self) -> None:
        self.fidelity = _as_fidelity_array(self.fidelity)
        self.created_at = np.asarray(self.created_at, dtype=np.float64)
        if self.fidelity.shape != self.created_at.shape:
            raise ValueError(
                f"fidelity and created_at must have the same shape, got "
                f"{self.fidelity.shape} and {self.created_at.shape}"
            )
        if self.fidelity.ndim != 1:
            raise ValueError(f"BellPairBatch arrays must be 1-D, got {self.fidelity.ndim}-D")

    @classmethod
    def uniform(cls, size: int, fidelity: float = 1.0, created_at: float = 0.0) -> "BellPairBatch":
        """``size`` identical pairs, all at the same fidelity and creation time."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return cls(
            fidelity=np.full(size, fidelity, dtype=np.float64),
            created_at=np.full(size, created_at, dtype=np.float64),
        )

    def __len__(self) -> int:
        return self.fidelity.shape[0]

    def fidelity_at(self, now: float, coherence_time: float) -> np.ndarray:
        """Every pair's current fidelity under exponential memory decay."""
        return decohered_fidelity_batch(self.fidelity, now - self.created_at, coherence_time)

    def decohered(self, now: float, coherence_time: float) -> "BellPairBatch":
        """The population with storage decay folded into the stored fidelities."""
        return BellPairBatch(
            fidelity=self.fidelity_at(now, coherence_time),
            created_at=np.full_like(self.created_at, now),
        )

    def distillable(self) -> np.ndarray:
        """Boolean mask of pairs that recurrence purification can still improve."""
        return self.fidelity > WERNER_MINIMUM_USEFUL_FIDELITY

    def select(self, mask: np.ndarray) -> "BellPairBatch":
        """The sub-population where ``mask`` is true."""
        return BellPairBatch(fidelity=self.fidelity[mask], created_at=self.created_at[mask])

    def swap_with(
        self,
        other: "BellPairBatch",
        now: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        measurement_efficiency: float = 1.0,
        gate_fidelity: float = 1.0,
    ) -> "BellPairBatch":
        """Swap slot ``i`` of this population with slot ``i`` of ``other``.

        Failed swaps (lossy Bell measurements) simply drop out of the
        returned population, mirroring the consume-on-failure semantics of
        :meth:`repro.quantum.swap.SwapPhysics.attempt`.
        """
        if len(self) != len(other):
            raise ValueError(
                f"populations must be the same size to swap, got {len(self)} and {len(other)}"
            )
        success, produced = swap_outcomes_batch(
            self.fidelity,
            other.fidelity,
            rng=rng,
            measurement_efficiency=measurement_efficiency,
            gate_fidelity=gate_fidelity,
        )
        return BellPairBatch(
            fidelity=produced[success],
            created_at=np.full(int(success.sum()), now, dtype=np.float64),
        )

    def distill_pairwise(
        self, rng: np.random.Generator, now: float = 0.0
    ) -> "BellPairBatch":
        """One BBPSSW round over the population, pairing consecutive slots.

        Slots ``(0, 1)``, ``(2, 3)``, ... are merged; an odd trailing pair
        passes through untouched.  Failed rounds consume both inputs.
        """
        n_rounds = len(self) // 2
        sacrificed = self.fidelity[: 2 * n_rounds : 2]
        kept = self.fidelity[1 : 2 * n_rounds : 2]
        # BBPSSW assumes two pairs of equal fidelity; model unequal inputs
        # by the standard twirl to their mean, which keeps the recurrence
        # exact for the equal-fidelity populations the sweeps generate.
        inputs = (sacrificed + kept) / 2.0
        success, output = distillation_outcomes_batch(inputs, rng)
        survivors = [output[success]]
        if len(self) % 2:
            survivors.append(self.fidelity[-1:])
        fidelity = np.concatenate(survivors) if survivors else np.empty(0)
        return BellPairBatch(
            fidelity=fidelity,
            created_at=np.full(fidelity.shape[0], now, dtype=np.float64),
        )

    def mean_fidelity(self) -> float:
        """The population's mean fidelity (NaN for an empty population)."""
        return float(np.mean(self.fidelity)) if len(self) else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BellPairBatch(n={len(self)}, mean_fidelity={self.mean_fidelity():.4f})"
