"""Standard single- and two-qubit gate matrices.

These constants feed the density-matrix micro-simulator in
:mod:`repro.quantum.states`.  Only the gates needed for Bell-pair creation,
entanglement swapping, teleportation and purification circuits are defined.
"""

from __future__ import annotations

import numpy as np

#: 2x2 identity.
IDENTITY = np.eye(2, dtype=complex)

#: Pauli X (bit flip).
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)

#: Pauli Y.
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)

#: Pauli Z (phase flip).
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

#: Hadamard gate.
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)

#: Controlled-NOT with qubit 0 as control, qubit 1 as target (in a 2-qubit space).
CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)

#: Controlled-Z (symmetric in control/target).
CZ = np.diag([1, 1, 1, -1]).astype(complex)

#: Phase gate S.
PHASE_S = np.array([[1, 0], [0, 1j]], dtype=complex)

#: pi/8 gate T.
PHASE_T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)


def rotation_x(theta: float) -> np.ndarray:
    """Rotation about the X axis by angle ``theta``."""
    return np.cos(theta / 2) * IDENTITY - 1j * np.sin(theta / 2) * PAULI_X


def rotation_y(theta: float) -> np.ndarray:
    """Rotation about the Y axis by angle ``theta``."""
    return np.cos(theta / 2) * IDENTITY - 1j * np.sin(theta / 2) * PAULI_Y


def rotation_z(theta: float) -> np.ndarray:
    """Rotation about the Z axis by angle ``theta``."""
    return np.cos(theta / 2) * IDENTITY - 1j * np.sin(theta / 2) * PAULI_Z


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return ``True`` when ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix @ matrix.conj().T
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))
