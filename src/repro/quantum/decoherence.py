"""Memory decoherence models.

The paper's LP extension (§3.2) folds decoherence into a loss factor
``L_{x,y}``: the fraction of fully distilled pairs that survive long enough
to be used.  The entity-level simulations instead track individual pair
lifetimes; both views are provided here.

The paper's headline evaluation assumes long-lived memories (its motivating
trend), which corresponds to :class:`NoDecoherence`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quantum.fidelity import decohered_fidelity


def survival_probability(elapsed: float, lifetime: float) -> float:
    """Probability an exponentially-decaying pair survives ``elapsed`` time."""
    if elapsed < 0:
        raise ValueError(f"elapsed must be non-negative, got {elapsed}")
    if lifetime <= 0:
        raise ValueError(f"lifetime must be positive, got {lifetime}")
    return math.exp(-elapsed / lifetime)


class DecoherenceModel(abc.ABC):
    """Interface every decoherence model implements."""

    @abc.abstractmethod
    def fidelity_after(self, initial_fidelity: float, elapsed: float) -> float:
        """Fidelity of a stored pair after ``elapsed`` time."""

    @abc.abstractmethod
    def sample_lifetime(self, rng: np.random.Generator) -> float:
        """Sample the time until the pair is considered lost."""

    @abc.abstractmethod
    def loss_factor(self, mean_storage_time: float) -> float:
        """The LP loss factor ``L``: expected survival over a mean storage time."""


class NoDecoherence(DecoherenceModel):
    """Ideal long-lived memory: pairs never decay (the paper's base model)."""

    def fidelity_after(self, initial_fidelity: float, elapsed: float) -> float:
        if elapsed < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed}")
        return initial_fidelity

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        return math.inf

    def loss_factor(self, mean_storage_time: float) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover
        return "NoDecoherence()"


@dataclass
class ExponentialDecoherence(DecoherenceModel):
    """Exponential (depolarising) memory decay with coherence time ``T``.

    Attributes
    ----------
    coherence_time:
        The ``1/e`` time constant of the depolarising decay.
    cutoff_fidelity:
        Pairs whose fidelity falls below this value are considered lost (the
        sampled lifetime is the time to reach the cutoff).
    """

    coherence_time: float
    cutoff_fidelity: float = 0.5

    def __post_init__(self) -> None:
        if self.coherence_time <= 0:
            raise ValueError(f"coherence_time must be positive, got {self.coherence_time}")
        if not 0.25 <= self.cutoff_fidelity < 1.0:
            raise ValueError(
                f"cutoff_fidelity must be within [0.25, 1), got {self.cutoff_fidelity}"
            )

    def fidelity_after(self, initial_fidelity: float, elapsed: float) -> float:
        return decohered_fidelity(initial_fidelity, elapsed, self.coherence_time)

    def time_to_cutoff(self, initial_fidelity: float) -> float:
        """Deterministic time for a pair to decay to the cutoff fidelity."""
        if initial_fidelity <= self.cutoff_fidelity:
            return 0.0
        numerator = initial_fidelity - 0.25
        denominator = self.cutoff_fidelity - 0.25
        return self.coherence_time * math.log(numerator / denominator)

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        """Sample an exponential lifetime with mean ``coherence_time``."""
        return float(rng.exponential(self.coherence_time))

    def loss_factor(self, mean_storage_time: float) -> float:
        """Expected survival fraction for pairs stored ``mean_storage_time`` on average.

        Assuming exponentially distributed storage times with the given mean
        and exponential decay with the coherence time, the survival fraction
        is ``T / (T + mean_storage_time)``.
        """
        if mean_storage_time < 0:
            raise ValueError(f"mean_storage_time must be non-negative, got {mean_storage_time}")
        return self.coherence_time / (self.coherence_time + mean_storage_time)


@dataclass
class RateScaledDecoherence(DecoherenceModel):
    """Wrap a model so stored pairs age ``factor`` times faster.

    The scenario layer's decoherence-rate ramps stack these wrappers on the
    running simulation's model: scaling elapsed time by ``factor`` is
    exactly a rate scale for exponential decay and a sensible definition
    for any other model.
    """

    inner: DecoherenceModel
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def fidelity_after(self, initial_fidelity: float, elapsed: float) -> float:
        return self.inner.fidelity_after(initial_fidelity, elapsed * self.factor)

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        return self.inner.sample_lifetime(rng) / self.factor

    def loss_factor(self, mean_storage_time: float) -> float:
        return self.inner.loss_factor(mean_storage_time * self.factor)


@dataclass
class CutoffPolicy:
    """A transport-layer "cleansing" policy (paper, §6): drop pairs older than a cutoff.

    Attributes
    ----------
    max_age:
        Pairs older than this are discarded; ``None`` disables the policy.
    """

    max_age: Optional[float] = None

    def should_discard(self, age: float) -> bool:
        """Whether a pair of the given storage ``age`` should be discarded."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if self.max_age is None:
            return False
        return age > self.max_age
