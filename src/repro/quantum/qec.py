"""Quantum error correction (QEC) overhead model.

Section 3.2 of the paper: "QEC can be added simply by assuming that QEC is
applied to generated Bell pairs ... If the overhead of the QEC (i.e., the
number of physical qubits per logical qubit) is R, we can simply thin the
generation rate ``g(x, y)`` to be ``g(x, y) / R``."

This module provides that thinning plus a small surface-code footprint model
used by examples to pick plausible values of ``R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Tuple

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class QECCode:
    """A quantum error-correcting code characterised by its encoding rate.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"surface-d5"``).
    physical_per_logical:
        The paper's ``R``: physical qubits consumed per logical qubit.
    logical_error_rate:
        Residual logical error rate per use (informational; the LP only
        needs ``R``).
    """

    name: str
    physical_per_logical: float
    logical_error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.physical_per_logical < 1.0:
            raise ValueError(
                f"physical_per_logical must be >= 1, got {self.physical_per_logical}"
            )
        if not 0.0 <= self.logical_error_rate <= 1.0:
            raise ValueError(
                f"logical_error_rate must be within [0, 1], got {self.logical_error_rate}"
            )

    @property
    def rate(self) -> float:
        """The code rate ``1 / R``."""
        return 1.0 / self.physical_per_logical


def apply_qec_thinning(
    generation_rates: Mapping[EdgeKey, float], code: QECCode
) -> Dict[EdgeKey, float]:
    """Thin every generation rate by the QEC overhead ``R`` (paper, §3.2)."""
    return {edge: rate / code.physical_per_logical for edge, rate in generation_rates.items()}


def surface_code_overhead(
    physical_error_rate: float,
    target_logical_error_rate: float,
    threshold: float = 0.01,
    prefactor: float = 0.1,
) -> QECCode:
    """Estimate the surface-code distance and footprint for a target logical error rate.

    Uses the standard empirical scaling
    ``p_L ~= prefactor * (p / p_th)^((d + 1) / 2)`` and a ``2 d^2`` physical
    qubit footprint (data plus syndrome qubits).  The numbers are only meant
    to give examples realistic values of the paper's ``R`` knob.

    Raises
    ------
    ValueError
        If the physical error rate is at or above threshold (the code cannot
        suppress errors) or the target is not below the physical rate.
    """
    if not 0.0 < physical_error_rate < 1.0:
        raise ValueError(f"physical_error_rate must be in (0, 1), got {physical_error_rate}")
    if not 0.0 < target_logical_error_rate < 1.0:
        raise ValueError(
            f"target_logical_error_rate must be in (0, 1), got {target_logical_error_rate}"
        )
    if physical_error_rate >= threshold:
        raise ValueError(
            f"physical error rate {physical_error_rate} is not below the threshold {threshold}"
        )
    ratio = physical_error_rate / threshold
    # Solve prefactor * ratio^((d+1)/2) <= target for the smallest odd d >= 3.
    distance = 3
    while True:
        logical = prefactor * ratio ** ((distance + 1) / 2.0)
        if logical <= target_logical_error_rate:
            break
        distance += 2
        if distance > 101:
            raise ValueError("required code distance exceeds 101; target unreachable")
    footprint = 2.0 * distance**2
    return QECCode(
        name=f"surface-d{distance}",
        physical_per_logical=footprint,
        logical_error_rate=prefactor * ratio ** ((distance + 1) / 2.0),
    )


def effective_generation_rate(raw_rate: float, code: QECCode) -> float:
    """Generation rate of *logical* (encoded) Bell pairs from a raw physical rate."""
    if raw_rate < 0:
        raise ValueError(f"raw_rate must be non-negative, got {raw_rate}")
    return raw_rate / code.physical_per_logical
