"""Per-node quantum memory.

The LP formulation assumes limitless buffers; real repeaters have a finite
number of memory slots and a decoherence process.  :class:`QuantumMemory`
models both so the entity-level simulations and the ablation experiments can
quantify how far practice sits from the idealised analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.quantum.bell_pair import BellPair, NodeId, pair_key
from repro.quantum.decoherence import CutoffPolicy, DecoherenceModel, NoDecoherence


class MemoryFullError(RuntimeError):
    """Raised when a qubit half cannot be stored because every slot is occupied."""


@dataclass(frozen=True)
class StoredQubit:
    """One memory slot: this node's half of a Bell pair plus when it was stored."""

    pair: BellPair
    stored_at: float

    def partner_of(self, owner: NodeId) -> NodeId:
        """The remote node holding the other half, from ``owner``'s perspective."""
        return self.pair.other_end(owner)


class QuantumMemory:
    """A node's quantum memory: a bounded set of Bell-pair halves.

    Parameters
    ----------
    owner:
        The node this memory belongs to.
    capacity:
        Maximum number of stored qubit halves (``None`` = unbounded, the
        paper's idealisation).
    decoherence:
        Decoherence model used to age stored pairs.
    cutoff:
        Optional transport-layer cleansing policy (paper §6) discarding
        pairs older than a threshold.
    """

    def __init__(
        self,
        owner: NodeId,
        capacity: Optional[int] = None,
        decoherence: Optional[DecoherenceModel] = None,
        cutoff: Optional[CutoffPolicy] = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self.decoherence = decoherence if decoherence is not None else NoDecoherence()
        self.cutoff = cutoff if cutoff is not None else CutoffPolicy()
        self._pairs: Dict[int, BellPair] = {}
        self._stored_at: Dict[int, float] = {}
        self.discarded_by_cutoff = 0
        self.discarded_by_decoherence = 0

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._pairs) >= self.capacity

    def store(self, pair: BellPair, now: float = 0.0) -> None:
        """Store this node's half of ``pair``.

        Raises
        ------
        MemoryFullError
            When the memory has no free slot.
        ValueError
            When the pair does not involve the owner or is already stored.
        """
        if not pair.involves(self.owner):
            raise ValueError(f"pair {pair.key} has no qubit at node {self.owner!r}")
        if pair.pair_id in self._pairs:
            raise ValueError(f"pair {pair.pair_id} is already stored at {self.owner!r}")
        if self.is_full:
            raise MemoryFullError(
                f"memory at {self.owner!r} is full (capacity={self.capacity})"
            )
        self._pairs[pair.pair_id] = pair
        self._stored_at[pair.pair_id] = now

    def release(self, pair_id: int) -> BellPair:
        """Remove and return the stored pair with id ``pair_id``."""
        if pair_id not in self._pairs:
            raise KeyError(f"pair {pair_id} is not stored at {self.owner!r}")
        self._stored_at.pop(pair_id, None)
        return self._pairs.pop(pair_id)

    def contains(self, pair_id: int) -> bool:
        return pair_id in self._pairs

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def pairs(self) -> List[BellPair]:
        """All stored pairs (a copy of the internal list)."""
        return list(self._pairs.values())

    def pairs_with(self, partner: NodeId) -> List[BellPair]:
        """Stored pairs whose far end is ``partner``, oldest first."""
        matching = [
            pair for pair in self._pairs.values() if pair.other_end(self.owner) == partner
        ]
        return sorted(matching, key=lambda pair: (self._stored_at[pair.pair_id], pair.pair_id))

    def count_with(self, partner: NodeId) -> int:
        """The paper's ``C_x(y)``: how many pairs this node shares with ``partner``."""
        return sum(1 for pair in self._pairs.values() if pair.other_end(self.owner) == partner)

    def partners(self) -> Dict[NodeId, int]:
        """All current entanglement partners and the pair count for each."""
        counts: Dict[NodeId, int] = {}
        for pair in self._pairs.values():
            partner = pair.other_end(self.owner)
            counts[partner] = counts.get(partner, 0) + 1
        return counts

    def oldest_with(self, partner: NodeId) -> Optional[BellPair]:
        """The oldest stored pair shared with ``partner`` (FIFO use policy)."""
        candidates = self.pairs_with(partner)
        return candidates[0] if candidates else None

    def current_fidelity(self, pair_id: int, now: float) -> float:
        """Fidelity of a stored pair right now, accounting for storage decay."""
        if pair_id not in self._pairs:
            raise KeyError(f"pair {pair_id} is not stored at {self.owner!r}")
        pair = self._pairs[pair_id]
        elapsed = now - self._stored_at[pair_id]
        return self.decoherence.fidelity_after(pair.fidelity, elapsed)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def expire(self, now: float, fidelity_floor: float = 0.5) -> List[BellPair]:
        """Discard pairs that violate the cutoff policy or fell below ``fidelity_floor``.

        Returns the list of discarded pairs so the caller (the protocol) can
        notify the far end -- keeping the distributed counts ``C_x(y)``
        consistent is the protocol's job, not the memory's.
        """
        discarded: List[BellPair] = []
        for pair_id in list(self._pairs):
            stored_at = self._stored_at[pair_id]
            age = now - stored_at
            pair = self._pairs[pair_id]
            if self.cutoff.should_discard(age):
                discarded.append(self.release(pair_id))
                self.discarded_by_cutoff += 1
                continue
            if self.decoherence.fidelity_after(pair.fidelity, age) < fidelity_floor:
                discarded.append(self.release(pair_id))
                self.discarded_by_decoherence += 1
        return discarded

    def utilisation(self) -> float:
        """Fraction of capacity in use (0.0 when unbounded)."""
        if self.capacity is None:
            return 0.0
        return len(self._pairs) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumMemory(owner={self.owner!r}, stored={len(self._pairs)}, "
            f"capacity={self.capacity})"
        )
