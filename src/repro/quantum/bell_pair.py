"""Bell-pair entities.

The paper's key observation is that Bell pairs are *interchangeable*: any
pair whose qubits sit at nodes ``x`` and ``y`` is, for networking purposes,
identical to any other ``[x, y]`` pair.  The :func:`pair_key` helper encodes
that canonicalisation (unordered node pair), while :class:`BellPair` carries
the per-instance attributes the entity-level simulations need (creation
time, fidelity, provenance).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.quantum.fidelity import WernerState, decohered_fidelity

NodeId = Hashable
PairId = int

_PAIR_COUNTER = itertools.count(1)


def pair_key(node_a: NodeId, node_b: NodeId) -> Tuple[NodeId, NodeId]:
    """Canonical unordered key for the pair of nodes ``{node_a, node_b}``.

    The paper writes this as ``[N1, N2]``.  Keys sort the two endpoints so
    ``pair_key(a, b) == pair_key(b, a)``, and reject degenerate pairs since
    a Bell pair entangled "with itself" at one node is useless (the paper
    sets ``g(x, x) = c(x, x) = 0`` and ``sigma_i(x, i) = 0``).
    """
    if node_a == node_b:
        raise ValueError(f"a Bell pair must span two distinct nodes, got {node_a!r} twice")
    first, second = sorted((node_a, node_b), key=repr)
    return (first, second)


@dataclass
class BellPair:
    """One entangled Bell pair whose qubits reside at ``node_a`` and ``node_b``.

    Attributes
    ----------
    node_a, node_b:
        The two nodes holding the qubit halves.
    fidelity:
        Werner fidelity at ``created_at`` (before any storage decay).
    created_at:
        Simulated time of creation.
    pair_id:
        Unique id (per-process monotonically increasing).
    provenance:
        ``"generation"`` for elementary pairs, ``"swap"`` for pairs produced
        by a swap, ``"distillation"`` for survivors of purification.
    swap_depth:
        Number of swap operations in this pair's history (0 for elementary
        pairs); used by analyses of how far pairs have travelled.
    """

    node_a: NodeId
    node_b: NodeId
    fidelity: float = 1.0
    created_at: float = 0.0
    pair_id: PairId = field(default_factory=lambda: next(_PAIR_COUNTER))
    provenance: str = "generation"
    swap_depth: int = 0
    consumed: bool = False

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError("a Bell pair must span two distinct nodes")
        if not 0.25 <= self.fidelity <= 1.0 + 1e-12:
            raise ValueError(f"fidelity must be within [0.25, 1], got {self.fidelity}")

    @property
    def key(self) -> Tuple[NodeId, NodeId]:
        """Canonical unordered endpoint key (see :func:`pair_key`)."""
        return pair_key(self.node_a, self.node_b)

    def involves(self, node: NodeId) -> bool:
        """Whether ``node`` holds one half of this pair."""
        return node == self.node_a or node == self.node_b

    def other_end(self, node: NodeId) -> NodeId:
        """The endpoint opposite ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node!r} does not hold a qubit of pair {self.pair_id}")

    def werner_state(self) -> WernerState:
        """The pair's quality as a :class:`~repro.quantum.fidelity.WernerState`."""
        return WernerState(self.fidelity)

    def fidelity_at(self, time: float, coherence_time: Optional[float]) -> float:
        """Fidelity after storage until ``time`` under exponential memory decay.

        ``coherence_time=None`` models the paper's long-lived-memory
        assumption (no decay).
        """
        if time < self.created_at:
            raise ValueError(
                f"cannot evaluate fidelity at {time}, before creation time {self.created_at}"
            )
        if coherence_time is None:
            return self.fidelity
        return decohered_fidelity(self.fidelity, time - self.created_at, coherence_time)

    def age(self, now: float) -> float:
        """Storage age of the pair at simulated time ``now``."""
        if now < self.created_at:
            raise ValueError(f"now={now} is before the pair's creation time {self.created_at}")
        return now - self.created_at

    def mark_consumed(self) -> None:
        """Flag the pair as consumed; consuming twice is a protocol bug."""
        if self.consumed:
            raise ValueError(f"Bell pair {self.pair_id} was already consumed")
        self.consumed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BellPair(id={self.pair_id}, key={self.key}, F={self.fidelity:.3f}, "
            f"depth={self.swap_depth}, provenance={self.provenance})"
        )
