"""Rendering of experiment results: plain text, CSV, and JSON-safe values.

The benchmark harness prints each table/figure of the paper as an aligned
plain-text table (stdout is the only output channel available offline);
these helpers keep the formatting consistent across experiments.  The
uniform result contract (:mod:`repro.experiments.api`) additionally renders
machine-readable output through :func:`render_csv` and :func:`json_safe`.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_render_cell(cell, float_format) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def json_safe(value: object) -> object:
    """Coerce a result cell into a portable JSON value.

    NumPy scalars become native Python numbers, non-finite floats become
    ``null`` (strict JSON has no NaN/Infinity), containers recurse, and
    anything else non-primitive falls back to ``str``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        value = float(value)
        return value if math.isfinite(value) else None
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    return str(value)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as RFC-4180 CSV (one header row).

    Every row must have exactly one cell per header -- the same invariant
    :func:`format_table` enforces -- so the CSV a result writes always
    matches its ``columns()`` contract.
    """
    if not headers:
        raise ValueError("a CSV table needs at least one column")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([str(header) for header in headers])
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but the table has {len(headers)} columns"
            )
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def render_series(
    x_label: str,
    series: Mapping[str, Mapping[object, float]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render several named series sharing an x axis (one row per x value).

    ``series`` maps series name -> {x value -> y value}; this is the shape
    of the paper's figures (one line per topology, swap overhead on the y
    axis).
    """
    if not series:
        raise ValueError("render_series needs at least one series")
    x_values: List[object] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    x_values.sort(key=lambda value: (isinstance(value, str), value))
    headers = [x_label] + list(series)
    rows = []
    for x in x_values:
        row: List[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append(float("nan") if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
