"""Fairness measures.

Section 4 argues that, with generation and consumption frozen, the balancing
process terminates in a max-min fair allocation of pair counts: "no buffer
count can be increased without reducing another that was already smaller".
These helpers make that property checkable (it is exercised by the
property-based tests) and provide the standard fairness summary statistics
(Jain's index, lexicographic minimum) used in the comparison experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.maxmin.balancer import MaxMinBalancer
from repro.core.maxmin.incremental import make_balancer
from repro.core.maxmin.ledger import PairCountLedger
from repro.network.topology import EdgeKey


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``; 1.0 = perfectly fair."""
    values = [float(value) for value in values]
    if not values:
        raise ValueError("jains_index requires at least one value")
    if any(value < 0 for value in values):
        raise ValueError("jains_index requires non-negative values")
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def lexicographic_min(values: Iterable[float]) -> Tuple[float, ...]:
    """The sorted (ascending) value vector, the object max-min fairness maximises."""
    return tuple(sorted(float(value) for value in values))


def is_max_min_fair(balancer: MaxMinBalancer) -> bool:
    """Whether the balancer's current ledger admits no preferable swap.

    This is exactly the paper's termination condition: a state where no
    preferable candidate exists is one where no pair count can be raised by
    a single swap without dropping a donor count to (or below) the level of
    the pair being helped.
    """
    return not balancer.has_preferable_swap()


def balanced_fixed_point(
    ledger: PairCountLedger,
    overheads: float = 1.0,
    engine: str = "incremental",
    max_rounds: int = 10_000,
    seed: int = 0,
) -> Tuple[PairCountLedger, MaxMinBalancer, int]:
    """Balance a *copy* of ``ledger`` to its max-min fixed point.

    Returns ``(converged_ledger, balancer, rounds)``.  ``engine`` picks the
    balancing implementation (``"naive"`` or ``"incremental"``); under the
    default deterministic policy both produce the identical fixed point, so
    analyses can use the fast engine and property tests can cross-check the
    two.  The input ledger is never mutated.
    """
    working = ledger.copy()
    balancer = make_balancer(
        engine,
        working,
        overheads=overheads,
        rng=np.random.default_rng(seed),
        keep_records=False,
    )
    rounds = balancer.balance_to_convergence(max_rounds=max_rounds)
    return working, balancer, rounds


def count_imbalance(ledger: PairCountLedger) -> float:
    """Max minus min positive pair count (0 for an empty or perfectly even ledger)."""
    counts = list(ledger.nonzero_pairs().values())
    if not counts:
        return 0.0
    return float(max(counts) - min(counts))


def per_consumer_service(
    consumption_counts: Mapping[EdgeKey, int], consumer_pairs: Sequence[EdgeKey]
) -> Dict[EdgeKey, int]:
    """Requests served per consumer pair, including zero entries for starved pairs."""
    return {pair: int(consumption_counts.get(pair, 0)) for pair in consumer_pairs}
