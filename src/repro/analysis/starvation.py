"""Starvation analysis.

Section 6 of the paper observes a starvation effect: "consumption requests
between nodes who are close on the generation graph would usurp the Bell
pairs needed to form the longer paths".  This module quantifies that effect
from a protocol run: per-request waiting times bucketed by shortest-path
length, plus a simple starvation score (how much longer far pairs wait than
near pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.overhead import request_path_lengths
from repro.network.topology import Topology
from repro.protocols.base import ProtocolResult


@dataclass
class StarvationReport:
    """Waiting-time statistics bucketed by request distance."""

    mean_wait_by_distance: Dict[int, float] = field(default_factory=dict)
    requests_by_distance: Dict[int, int] = field(default_factory=dict)
    unsatisfied_requests: int = 0
    starvation_ratio: float = float("nan")

    def distances(self) -> List[int]:
        return sorted(self.mean_wait_by_distance)


def starvation_report(topology: Topology, result: ProtocolResult) -> StarvationReport:
    """Bucket satisfied-request waiting times by generation-graph distance.

    The ``starvation_ratio`` is the mean wait of the farthest-distance bucket
    divided by the mean wait of the nearest-distance bucket (``nan`` when
    either bucket is empty or has zero mean); values well above 1 indicate
    the long-path starvation the paper describes.
    """
    waits_by_distance: Dict[int, List[float]] = {}
    lengths = request_path_lengths(topology, result.satisfied_requests)
    for request, distance in zip(result.satisfied_requests, lengths):
        wait = request.waiting_rounds
        if wait is None:
            continue
        waits_by_distance.setdefault(distance, []).append(float(wait))

    report = StarvationReport(
        unsatisfied_requests=result.requests_total - result.requests_satisfied
    )
    for distance, waits in waits_by_distance.items():
        report.mean_wait_by_distance[distance] = sum(waits) / len(waits)
        report.requests_by_distance[distance] = len(waits)

    if report.mean_wait_by_distance:
        nearest = min(report.mean_wait_by_distance)
        farthest = max(report.mean_wait_by_distance)
        near_wait = report.mean_wait_by_distance[nearest]
        far_wait = report.mean_wait_by_distance[farthest]
        if nearest != farthest and near_wait > 0:
            report.starvation_ratio = far_wait / near_wait
    return report
