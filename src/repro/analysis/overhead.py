"""The swap-overhead metric (paper, Section 5).

``swap overhead = (swaps performed in simulation)
                  / sum over satisfied consumption events of s(l(c))``

where ``l(c)`` is the hop length of the shortest generation-graph path for
consumption event ``c`` and ``s(.)`` the nested-swapping count
(:func:`repro.protocols.nested.nested_swap_count`).  The denominator is the
minimum number of swaps that could have satisfied the same consumption
events, so the metric is at least 1 (with the exact recurrence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.lp.extensions import PairOverheads
from repro.network.demand import ConsumptionRequest
from repro.network.topology import EdgeKey, Topology
from repro.protocols.base import ProtocolResult
from repro.protocols.fusion import DEFAULT_GROUP_STRATEGY, group_sessions
from repro.protocols.nested import nested_swap_count


@dataclass
class OverheadBreakdown:
    """The overhead metric plus the pieces it was computed from."""

    swaps_performed: int
    optimal_swaps: float
    overhead: float
    variant: str
    distillation: float
    per_request_optimal: List[float] = field(default_factory=list)
    path_lengths: List[int] = field(default_factory=list)

    @property
    def satisfied_requests(self) -> int:
        return len(self.per_request_optimal)


def request_path_lengths(
    topology: Topology, requests: Iterable[ConsumptionRequest]
) -> List[int]:
    """Shortest-path hop counts, in the generation graph, per Bell-pair session.

    A 2-party request contributes exactly one entry (its endpoints' shortest
    path), so pair-only workloads are unchanged.  A multicast request
    contributes one entry per session of its serving strategy (star arms for
    ``shared``, all member pairs for ``independent-sessions``): the optimal
    cost of a group consumption is the optimal cost of the sessions it spends.
    """
    lengths: List[int] = []
    for request in requests:
        if len(request.pair) == 2:
            sessions = [request.pair]
        else:
            sessions = group_sessions(
                request.pair, request.strategy or DEFAULT_GROUP_STRATEGY
            )
        for session in sessions:
            length = topology.shortest_path_length(*session)
            if length is None:
                raise ValueError(
                    f"request pair {session} is disconnected in {topology.name}; "
                    "the overhead metric is undefined"
                )
            lengths.append(length)
    return lengths


def optimal_swaps_for_requests(
    topology: Topology,
    requests: Iterable[ConsumptionRequest],
    distillation: float = 1.0,
    variant: str = "exact",
) -> float:
    """The overhead denominator: ``sum_c s(l(c))`` over the satisfied requests."""
    return sum(
        nested_swap_count(length, distillation, variant)
        for length in request_path_lengths(topology, requests)
    )


def swap_overhead(swaps_performed: int, optimal_swaps: float) -> float:
    """The ratio itself, guarding the degenerate no-swaps-needed case.

    When the optimal cost is zero (every satisfied request was between
    adjacent nodes) the overhead is defined as 1.0 if no swaps were
    performed and infinity otherwise.
    """
    if swaps_performed < 0:
        raise ValueError(f"swaps_performed must be non-negative, got {swaps_performed}")
    if optimal_swaps < 0:
        raise ValueError(f"optimal_swaps must be non-negative, got {optimal_swaps}")
    if optimal_swaps == 0:
        return 1.0 if swaps_performed == 0 else float("inf")
    return swaps_performed / optimal_swaps


def swap_overhead_from_result(
    topology: Topology,
    result: ProtocolResult,
    distillation: Optional[float] = None,
    overheads: Optional[PairOverheads] = None,
    variant: str = "exact",
) -> OverheadBreakdown:
    """Compute the full overhead breakdown for one protocol run.

    ``distillation`` defaults to the uniform value in ``overheads`` (or 1.0),
    matching the paper's setting where all ``D_{x,y}`` share one value.
    """
    if distillation is None:
        distillation = overheads.default_distillation if overheads is not None else 1.0
    lengths = request_path_lengths(topology, result.satisfied_requests)
    per_request = [nested_swap_count(length, distillation, variant) for length in lengths]
    optimal = sum(per_request)
    return OverheadBreakdown(
        swaps_performed=result.swaps_performed,
        optimal_swaps=optimal,
        overhead=swap_overhead(result.swaps_performed, optimal),
        variant=variant,
        distillation=distillation,
        per_request_optimal=per_request,
        path_lengths=lengths,
    )
