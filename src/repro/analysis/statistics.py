"""Summary statistics for repeated trials.

Every experiment in :mod:`repro.experiments` runs several seeded trials per
configuration; these helpers reduce the per-trial measurements to the means
and confidence intervals the reports print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean, spread and range of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_row(self) -> Tuple[float, float, float]:
        """The (mean, ci_low, ci_high) triple used by the report tables."""
        return (self.mean, self.ci_low, self.ci_high)


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Mean and Student-t confidence interval of ``values``.

    Single-observation samples return a degenerate interval equal to the
    observation (there is no spread information to widen it with).
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    mean = float(np.mean(data))
    if len(data) == 1:
        return mean, mean, mean
    sem = float(stats.sem(data))
    if sem == 0.0:
        return mean, mean, mean
    margin = sem * float(stats.t.ppf((1.0 + confidence) / 2.0, len(data) - 1))
    return mean, mean - margin, mean + margin


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval of the mean (distribution-free)."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples <= 0:
        raise ValueError(f"n_resamples must be positive, got {n_resamples}")
    data = np.asarray(list(values), dtype=float)
    mean = float(np.mean(data))
    if len(data) == 1:
        return mean, mean, mean
    generator = rng if rng is not None else np.random.default_rng(0)
    resample_means = np.empty(n_resamples)
    for index in range(n_resamples):
        sample = generator.choice(data, size=len(data), replace=True)
        resample_means[index] = np.mean(sample)
    lower = float(np.quantile(resample_means, (1.0 - confidence) / 2.0))
    upper = float(np.quantile(resample_means, 1.0 - (1.0 - confidence) / 2.0))
    return mean, lower, upper


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStatistics:
    """Full :class:`SummaryStatistics` for a sample."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    data = np.asarray(list(values), dtype=float)
    mean, low, high = mean_confidence_interval(values, confidence)
    return SummaryStatistics(
        count=len(data),
        mean=mean,
        std=float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        ci_low=low,
        ci_high=high,
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used to aggregate overhead ratios across topologies)."""
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sample")
    data = np.asarray(list(values), dtype=float)
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))
