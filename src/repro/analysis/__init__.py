"""Analysis of simulation output.

Everything needed to turn raw protocol results into the quantities the paper
reports (and a few it should have): the swap-overhead metric of Section 5,
max-min fairness checks for the balancer's fixed points, starvation/wait
statistics, summary statistics with confidence intervals, and plain-text
table rendering for experiment reports.
"""

from repro.analysis.fairness import is_max_min_fair, jains_index, lexicographic_min
from repro.analysis.overhead import (
    OverheadBreakdown,
    optimal_swaps_for_requests,
    request_path_lengths,
    swap_overhead,
    swap_overhead_from_result,
)
from repro.analysis.reporting import format_table, render_series
from repro.analysis.starvation import StarvationReport, starvation_report
from repro.analysis.statistics import (
    SummaryStatistics,
    bootstrap_confidence_interval,
    mean_confidence_interval,
    summarize,
)

__all__ = [
    "OverheadBreakdown",
    "StarvationReport",
    "SummaryStatistics",
    "bootstrap_confidence_interval",
    "format_table",
    "is_max_min_fair",
    "jains_index",
    "lexicographic_min",
    "mean_confidence_interval",
    "optimal_swaps_for_requests",
    "render_series",
    "request_path_lengths",
    "starvation_report",
    "summarize",
    "swap_overhead",
    "swap_overhead_from_result",
]
